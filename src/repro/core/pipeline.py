"""Parallel vetting pipeline: crash-aware dispatch over emulator slots.

The deployed APICHECKER vets ~10K submissions/day on one 16-emulator
server (§5.2).  :class:`VettingPipeline` reproduces that executor shape:
a worker pool sized to :attr:`ServerCluster.total_slots` pulls apps off
a dispatch queue, each worker runs *one emulation attempt* at a time,
and the dispatcher requeues crashed or incompatible apps through the
engine's retry/fallback chain with bounded (capped, exponential)
simulated backoff.  The per-slot timeline is recorded as attempts
actually complete, so the resulting :class:`ScheduleReport` reflects
real execution order rather than post-hoc list scheduling.

Determinism: every app draws randomness from
:meth:`DynamicAnalysisEngine.rng_for` — a pure function of the engine
seed and the APK md5 — and an app is never in flight twice at once, so
its attempt sequence consumes the same stream regardless of worker
count.  Sequential, 1-worker, and N-worker runs produce bit-identical
observations.

:class:`ObservationCache` short-circuits re-emulation for resubmitted
and repackaged APKs (md5-keyed), the dominant share of daily market
traffic; entries optionally persist as JSON lines compatible with
:mod:`repro.core.reporting`.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass
from heapq import heappop, heappush
from pathlib import Path

from repro.android.apk import Apk
from repro.core.engine import AppAnalysis, DynamicAnalysisEngine
from repro.core.features import AppObservation
from repro.corpus.generator import AppCorpus
from repro.emulator.backends import EmulatorCrash, IncompatibleAppError
from repro.emulator.cluster import (
    ScheduledTask,
    ScheduleReport,
    ServerCluster,
)
from repro.emulator.runtime import EmulationResult
from repro.obs import MetricsRegistry, SpanSink, record_span

#: Cache file format marker (shares the analysis-log JSON-lines shape).
CACHE_FORMAT_VERSION = 1

#: Keys of the unified counts schema shared by :meth:`PipelineResult.as_dict`
#: and :meth:`repro.core.vetting.DailyReport.as_dict` — one shape for every
#: stats surface, sourced from the run's registry counters.
UNIFIED_COUNT_KEYS = (
    "submissions",
    "analyzed",
    "cached",
    "failures",
    "requeues",
    "cache_hits",
    "cache_misses",
    "workers",
    "makespan_minutes",
    "throughput_per_day",
    "wall_seconds",
)


def unified_counts(**values) -> dict:
    """Build the unified stats dict, enforcing the shared schema."""
    missing = [k for k in UNIFIED_COUNT_KEYS if k not in values]
    extra = [k for k in values if k not in UNIFIED_COUNT_KEYS]
    if missing or extra:
        raise ValueError(
            f"unified counts schema mismatch: missing={missing} "
            f"extra={extra}"
        )
    return {key: values[key] for key in UNIFIED_COUNT_KEYS}


def render_summary(counts: dict) -> str:
    """One-line operational summary of a unified counts dict."""
    return (
        f"{counts['submissions']} submissions: "
        f"{counts['analyzed']} analyzed, {counts['cached']} cached, "
        f"{counts['failures']} failed | {counts['requeues']} requeues | "
        f"cache {counts['cache_hits']}/"
        f"{counts['cache_hits'] + counts['cache_misses']} hits | "
        f"{counts['workers']} workers, "
        f"makespan {counts['makespan_minutes']:.1f} sim-min, "
        f"{counts['throughput_per_day']:.0f} apps/day, "
        f"wall {counts['wall_seconds']:.2f}s"
    )


class ObservationCache:
    """md5-keyed observation store with optional JSON-lines persistence.

    The daily vetting loop sees heavy resubmission traffic (updates,
    repackaged APKs retried by developers); an app whose md5 was already
    analyzed skips re-emulation entirely and replays the stored
    observation.  Thread-safe.

    Args:
        path: JSON-lines file to load from / append to.  Missing files
            are created on first :meth:`put`; ``None`` keeps the cache
            purely in memory.
    """

    def __init__(self, path: str | Path | None = None):
        self.path = Path(path) if path is not None else None
        self._entries: dict[str, AppObservation] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        if self.path is not None:
            if self.path.exists():
                self._load()
            else:
                # Fail on an unwritable location now, not after a full
                # day of emulation when the first entry is appended.
                self.path.parent.mkdir(parents=True, exist_ok=True)

    @staticmethod
    def _to_dict(obs: AppObservation) -> dict:
        return {
            "v": CACHE_FORMAT_VERSION,
            "md5": obs.apk_md5,
            "apis": list(obs.invoked_api_ids),
            "api_counts": [list(pair) for pair in obs.invoked_api_counts],
            "permissions": list(obs.permissions),
            "intents": list(obs.intents),
            "minutes": obs.analysis_minutes,
        }

    @staticmethod
    def _from_dict(record: dict) -> AppObservation:
        version = record.get("v")
        if version != CACHE_FORMAT_VERSION:
            raise ValueError(f"unsupported cache format version: {version!r}")
        return AppObservation(
            apk_md5=record["md5"],
            invoked_api_ids=tuple(int(i) for i in record["apis"]),
            permissions=tuple(record["permissions"]),
            intents=tuple(record["intents"]),
            analysis_minutes=float(record.get("minutes", 0.0)),
            invoked_api_counts=tuple(
                (int(a), int(c)) for a, c in record.get("api_counts", [])
            ),
        )

    def _load(self) -> None:
        with self.path.open("r", encoding="utf-8") as fh:
            for line_no, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ValueError(
                        f"{self.path}:{line_no}: malformed cache line"
                    ) from exc
                obs = self._from_dict(record)
                self._entries[obs.apk_md5] = obs

    def get(self, md5: str) -> AppObservation | None:
        """Look up an observation, counting the hit or miss."""
        with self._lock:
            obs = self._entries.get(md5)
            if obs is None:
                self.misses += 1
            else:
                self.hits += 1
            return obs

    def put(self, obs: AppObservation) -> None:
        """Store an observation (idempotent per md5) and persist it."""
        with self._lock:
            if obs.apk_md5 in self._entries:
                return
            self._entries[obs.apk_md5] = obs
            if self.path is not None:
                with self.path.open("a", encoding="utf-8") as fh:
                    fh.write(json.dumps(self._to_dict(obs)))
                    fh.write("\n")

    def __contains__(self, md5: str) -> bool:
        with self._lock:
            return md5 in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


@dataclass(frozen=True)
class PipelineFailure:
    """One app that exhausted every backend under pipeline execution."""

    app_index: int
    apk_md5: str
    reason: str


@dataclass
class PipelineResult:
    """Everything one :meth:`VettingPipeline.run` produced.

    Attributes:
        analyses: per-app outcomes in submission order (None at indices
            that failed every backend; see ``failures``).
        schedule: per-slot timeline derived from actual execution order.
        cache_hits / cache_misses: observation-cache traffic this run.
        requeues: dispatcher requeues (crashes + backend fallbacks).
        failures: apps no backend could analyze.
        wall_seconds: real elapsed time of the run.
        workers: worker-pool size used.
    """

    analyses: list[AppAnalysis | None]
    schedule: ScheduleReport
    cache_hits: int
    cache_misses: int
    requeues: int
    failures: tuple[PipelineFailure, ...]
    wall_seconds: float
    workers: int

    @property
    def observations(self) -> list[AppObservation]:
        """Successful observations in submission order."""
        return [a.observation for a in self.analyses if a is not None]

    @property
    def n_analyzed(self) -> int:
        return sum(
            1 for a in self.analyses if a is not None and not a.from_cache
        )

    @property
    def n_cached(self) -> int:
        return sum(1 for a in self.analyses if a is not None and a.from_cache)

    def as_dict(self) -> dict:
        """Unified counts (same schema as ``DailyReport.as_dict``)."""
        return unified_counts(
            submissions=len(self.analyses),
            analyzed=self.n_analyzed,
            cached=self.n_cached,
            failures=len(self.failures),
            requeues=self.requeues,
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
            workers=self.workers,
            makespan_minutes=self.schedule.makespan_minutes,
            throughput_per_day=self.schedule.throughput_per_day(),
            wall_seconds=self.wall_seconds,
        )

    def summary(self) -> str:
        """One-line operational summary (same shape as DailyReport's)."""
        return render_summary(self.as_dict())


@dataclass
class _AppTask:
    """Dispatcher-side state for one submitted app."""

    index: int
    apk: Apk
    rng: object  # np.random.Generator; typed loosely to keep pickling simple
    backend_pos: int = 0
    retries_on_backend: int = 0
    attempts: int = 0
    requeues: int = 0
    wasted_minutes: float = 0.0
    backoff_minutes: float = 0.0
    submitted: bool = False
    last_error: str = ""
    enqueued_wall: float = 0.0


class VettingPipeline:
    """Dispatches analyses onto a worker pool of emulator slots.

    Args:
        engine: the analysis engine (shared by all workers; its per-app
            rng derivation is what makes sharing safe).
        cluster: hardware model; the pool is sized to its slot count.
        workers: override the pool size (clamped to
            ``cluster.total_slots``; default: all slots).
        cache: md5-keyed observation cache; hits skip emulation.
        base_backoff_minutes: simulated delay before a requeued app's
            next attempt may start, doubled per requeue.
        max_backoff_minutes: backoff cap (the "bounded" part).
        pace_seconds_per_minute: real seconds a worker holds its slot
            per simulated emulation minute.  0.0 (default) runs the
            simulation flat out; benchmarks set it >0 to reproduce the
            emulator-occupancy-bound regime the production server
            operates in, where parallel slots buy real wall-clock time.
        registry: metrics registry the pipeline records into (default:
            the engine's registry, so engine and pipeline telemetry
            land in one place).
        sink: optional span sink for structured trace events (default:
            the engine's sink).
    """

    def __init__(
        self,
        engine: DynamicAnalysisEngine,
        cluster: ServerCluster | None = None,
        workers: int | None = None,
        cache: ObservationCache | None = None,
        base_backoff_minutes: float = 0.25,
        max_backoff_minutes: float = 4.0,
        pace_seconds_per_minute: float = 0.0,
        registry: MetricsRegistry | None = None,
        sink: SpanSink | None = None,
    ):
        if workers is not None and workers <= 0:
            raise ValueError("workers must be positive")
        if base_backoff_minutes < 0 or max_backoff_minutes < 0:
            raise ValueError("backoff minutes must be non-negative")
        if pace_seconds_per_minute < 0:
            raise ValueError("pace must be non-negative")
        self.engine = engine
        self.cluster = cluster or ServerCluster(n_servers=1)
        slots = self.cluster.total_slots
        self.workers = slots if workers is None else min(workers, slots)
        self.cache = cache
        self.base_backoff_minutes = base_backoff_minutes
        self.max_backoff_minutes = max_backoff_minutes
        self.pace_seconds_per_minute = pace_seconds_per_minute
        self.registry = registry if registry is not None else engine.registry
        self.sink = sink if sink is not None else engine.sink

    # ------------------------------------------------------------------
    # Worker side: one emulation attempt
    # ------------------------------------------------------------------

    def _run_attempt(self, task: _AppTask) -> tuple[str, object]:
        """Run one attempt of one app on its current backend."""
        backend = self.engine.attempt_chain[task.backend_pos]
        pace = self.pace_seconds_per_minute
        queue_wait = time.perf_counter() - task.enqueued_wall
        self.registry.observe("pipeline_queue_wait_seconds", queue_wait)
        started = time.perf_counter()
        try:
            try:
                result = self.engine.attempt(task.apk, backend, task.rng)
            except IncompatibleAppError as exc:
                return "incompatible", str(exc)
            except EmulatorCrash as exc:
                if pace:
                    time.sleep(self.engine.crash_waste_minutes() * pace)
                return "crash", str(exc)
            if pace:
                time.sleep(result.analysis_minutes * pace)
            return "ok", result
        finally:
            # Slot-occupancy wall time of this attempt (pace included).
            self.registry.observe(
                "pipeline_attempt_seconds",
                time.perf_counter() - started,
                backend=backend.name,
            )

    # ------------------------------------------------------------------
    # Dispatcher side
    # ------------------------------------------------------------------

    def run(self, corpus: AppCorpus | list[Apk]) -> PipelineResult:
        """Vet a batch, streaming completions back as they finish."""
        apks = list(corpus)
        started = time.perf_counter()
        n = len(apks)
        registry = self.registry
        registry.inc("pipeline_submissions_total", n)
        analyses: list[AppAnalysis | None] = [None] * n
        failures: list[PipelineFailure] = []
        requeues = 0
        hits_before = self.cache.hits if self.cache is not None else 0
        misses_before = self.cache.misses if self.cache is not None else 0

        engine = self.engine
        chain = engine.attempt_chain
        slots_per_server = self.cluster.server.emulator_slots
        # Simulated per-slot clocks for the executed timeline.
        slot_heap: list[tuple[float, int]] = [
            (0.0, s) for s in range(self.workers)
        ]
        timeline: list[ScheduledTask] = []

        pending: deque[_AppTask] = deque(
            _AppTask(
                index=i,
                apk=apk,
                rng=engine.rng_for(apk),
                enqueued_wall=started,
            )
            for i, apk in enumerate(apks)
        )
        # Apps deferred because an identical md5 is currently in flight.
        deferred: dict[str, list[_AppTask]] = {}
        inflight_md5: set[str] = set()

        def record_success(task: _AppTask, result: EmulationResult) -> None:
            nonlocal timeline
            analysis = engine._finish(
                task.apk,
                result,
                task.attempts,
                task.backend_pos > 0,
                task.wasted_minutes,
            )
            analyses[task.index] = analysis
            avail, slot = heappop(slot_heap)
            start = max(avail, task.backoff_minutes)
            end = start + analysis.total_minutes
            heappush(slot_heap, (end, slot))
            timeline.append(
                ScheduledTask(
                    app_index=task.index,
                    server=slot // slots_per_server,
                    slot=slot % slots_per_server,
                    start_minute=start,
                    end_minute=end,
                )
            )
            registry.inc("pipeline_analyzed_total")
            # The executed slot interval, recorded as a simulated-clock
            # span: throughput and occupancy figures derive from these
            # records rather than from post-hoc estimates.
            record_span(
                "pipeline_task",
                start,
                end,
                registry=registry,
                sink=self.sink,
                app_index=task.index,
                slot=slot,
                attempts=task.attempts,
            )
            if self.cache is not None:
                self.cache.put(analysis.observation)

        def record_failure(task: _AppTask) -> None:
            engine._bump("failures")
            registry.inc("pipeline_failed_total")
            failures.append(
                PipelineFailure(
                    app_index=task.index,
                    apk_md5=task.apk.md5,
                    reason=(
                        f"all backends failed for {task.apk.package_name}: "
                        f"{task.last_error}"
                    ),
                )
            )

        def release_deferred(md5: str) -> None:
            for held in deferred.pop(md5, []):
                pending.appendleft(held)

        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            inflight: dict[object, _AppTask] = {}
            while pending or inflight:
                # Fill every free worker slot.
                while pending and len(inflight) < self.workers:
                    task = pending.popleft()
                    md5 = task.apk.md5
                    if self.cache is not None and task.attempts == 0:
                        cached = self.cache.get(md5)
                        registry.inc(
                            "pipeline_cache_hits_total"
                            if cached is not None
                            else "pipeline_cache_misses_total"
                        )
                        if cached is not None:
                            registry.inc("pipeline_cached_total")
                            analyses[task.index] = AppAnalysis(
                                observation=cached,
                                result=None,
                                attempts=0,
                                fell_back=False,
                                total_minutes=0.0,
                                from_cache=True,
                            )
                            continue
                        if md5 in inflight_md5:
                            deferred.setdefault(md5, []).append(task)
                            continue
                    if not task.submitted:
                        task.submitted = True
                        engine._bump("submissions")
                    inflight_md5.add(md5)
                    fut = pool.submit(self._run_attempt, task)
                    inflight[fut] = task
                if not inflight:
                    continue
                done, _ = wait(inflight, return_when=FIRST_COMPLETED)
                for fut in done:
                    task = inflight.pop(fut)
                    inflight_md5.discard(task.apk.md5)
                    kind, payload = fut.result()
                    task.attempts += 1
                    if kind == "ok":
                        record_success(task, payload)
                        release_deferred(task.apk.md5)
                        continue
                    task.last_error = str(payload)
                    if kind == "crash":
                        task.wasted_minutes += engine.crash_waste_minutes()
                        task.retries_on_backend += 1
                        if task.retries_on_backend > engine.max_retries:
                            task.backend_pos += 1
                            task.retries_on_backend = 0
                    else:  # incompatible: no point retrying this backend
                        task.backend_pos += 1
                        task.retries_on_backend = 0
                    if task.backend_pos >= len(chain):
                        record_failure(task)
                        release_deferred(task.apk.md5)
                        continue
                    task.requeues += 1
                    requeues += 1
                    registry.inc("pipeline_requeues_total")
                    backoff = min(
                        self.max_backoff_minutes,
                        self.base_backoff_minutes
                        * 2 ** (task.requeues - 1),
                    )
                    registry.inc("pipeline_backoff_minutes_total", backoff)
                    task.backoff_minutes += backoff
                    task.enqueued_wall = time.perf_counter()
                    pending.append(task)

        schedule = ScheduleReport.from_executed(
            timeline, self.workers, slots_per_server
        )
        schedule.register_metrics(registry)
        registry.set_gauge("pipeline_workers", self.workers)
        registry.observe(
            "pipeline_run_seconds", time.perf_counter() - started
        )
        hits = (self.cache.hits - hits_before) if self.cache is not None else 0
        misses = (
            (self.cache.misses - misses_before)
            if self.cache is not None
            else 0
        )
        return PipelineResult(
            analyses=analyses,
            schedule=schedule,
            cache_hits=hits,
            cache_misses=misses,
            requeues=requeues,
            failures=tuple(failures),
            wall_seconds=time.perf_counter() - started,
            workers=self.workers,
        )
