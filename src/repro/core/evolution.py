"""Monthly model evolution (§5.3).

APICHECKER retrains every month: the training pool absorbs the month's
newly reviewed submissions, the key-API selection is re-run (the SDK
itself gains APIs every few months), and the classifier is refit.  The
paper observes the key-API count drifting only slightly (425–432,
Fig. 14) while online precision/recall stay above 98%/96% (Fig. 12).

Online metrics are measured *prospectively*: each month's submissions
are vetted with the model trained on prior months only, then folded
into the pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.checker import ApiChecker
from repro.core.engine import DynamicAnalysisEngine
from repro.core.features import AppObservation
from repro.corpus.generator import AppCorpus
from repro.corpus.market import MarketStream
from repro.emulator.backends import GoogleEmulator
from repro.ml.metrics import ClassificationReport, evaluate


@dataclass(frozen=True)
class MonthlyRecord:
    """One month of online operation.

    Attributes:
        month: 1-based month index.
        report: prospective precision/recall for the month's traffic.
        n_key_apis: size of the key set after the month's retraining
            (of the *serving* model: a gate-rejected candidate leaves
            the previous model's key set in place).
        sdk_size: SDK API count that month.
        pool_size: training-pool size after absorption.
        promotion: the gate's decision for the month's retrained
            candidate (None when no ``model_gate`` is installed and the
            swap was unconditional).  Carries ``promoted``,
            ``agreement``, and ``reason`` when a
            :class:`repro.serve.evolution.ShadowPromotionGate` is wired
            in.
        retrained: whether the loop's retrain policy fired this month
            (always True for the legacy policy-less loop; also None
            promotion when it did not fire).
        decision: the :class:`~repro.drift.policy.RetrainDecision`
            behind ``retrained`` (None for the policy-less loop).
    """

    month: int
    report: ClassificationReport
    n_key_apis: int
    sdk_size: int
    pool_size: int
    promotion: object | None = None
    retrained: bool = True
    decision: object | None = None


class EvolutionLoop:
    """Drives monthly vet-then-retrain cycles over a market stream.

    Args:
        stream: the market's monthly submission stream.
        initial_corpus: bootstrap training corpus.
        initial_labels: review labels for the bootstrap corpus
            (default: corpus ground truth).
        max_pool: training-pool size cap (oldest entries evicted).
        checker_seed: seed for retrained checkers.
        monkey_events: UI events per analysis.
        model_gate: optional promotion gate called as
            ``gate(candidate, month_observations, metadata=...)`` after
            each retrain.  When it returns a decision whose
            ``promoted`` attribute is False, the month's candidate is
            discarded and the previous model keeps serving — monthly
            evolution becomes promote-on-threshold instead of an
            unconditional replace (see
            :class:`repro.serve.evolution.ShadowPromotionGate`).
            ``None`` preserves the historical unconditional swap.
        retrain_policy: optional :class:`~repro.drift.policy.RetrainPolicy`
            deciding *whether* each month retrains at all.  ``None``
            preserves the paper's monthly-always cadence.  A policy is
            consulted after the month's traffic is vetted and absorbed
            (and the drift monitors updated), so drift-triggered
            policies see the month that just happened.
        monitors: optional :class:`~repro.drift.detectors.DriftMonitorBank`
            the loop feeds each month — the market's review labels are
            the labeled-lag feedback stream for the rolling-F1 monitor,
            and the month's encoded feature block updates the PSI
            monitor (its reference is re-baselined from the training
            pool at every adopted retrain).
    """

    def __init__(
        self,
        stream: MarketStream,
        initial_corpus: AppCorpus,
        initial_labels: np.ndarray | None = None,
        max_pool: int = 8000,
        checker_seed: int = 0,
        monkey_events: int = 5000,
        model_gate: Callable[..., object] | None = None,
        retrain_policy: object | None = None,
        monitors: object | None = None,
    ):
        if max_pool < len(initial_corpus):
            raise ValueError("max_pool must hold at least the initial corpus")
        self.stream = stream
        self.max_pool = max_pool
        self.monkey_events = monkey_events
        self.model_gate = model_gate
        self.retrain_policy = retrain_policy
        self.monitors = monitors
        self.retrain_count = 0
        self._checker_seed = checker_seed
        self._rng = np.random.default_rng(checker_seed)
        labels = (
            initial_corpus.labels if initial_labels is None
            else np.asarray(initial_labels)
        )
        self._pool_apps = list(initial_corpus)
        self._pool_labels = list(np.asarray(labels, dtype=bool))
        self._pool_obs = self._study(initial_corpus)
        self.checker = self._retrain()
        self._rebaseline_monitors()
        self.history: list[MonthlyRecord] = []

    def _study(self, corpus: AppCorpus | list) -> list[AppObservation]:
        """All-API study observations for newly arrived apps."""
        engine = DynamicAnalysisEngine(
            self.stream.sdk,
            tracked_api_ids=np.arange(len(self.stream.sdk)),
            primary=GoogleEmulator(),
            fallback=None,
            monkey_events=self.monkey_events,
            seed=int(self._rng.integers(2**31)),
        )
        return engine.observations(corpus)

    def _retrain(self) -> ApiChecker:
        corpus = AppCorpus(self.stream.sdk, list(self._pool_apps))
        checker = ApiChecker(
            self.stream.sdk,
            monkey_events=self.monkey_events,
            seed=self._checker_seed,
        )
        checker.fit(
            corpus,
            labels=np.array(self._pool_labels, dtype=bool),
            study_observations=list(self._pool_obs),
        )
        return checker

    def _absorb(self, batch) -> None:
        """Add a reviewed month to the pool, evicting oldest overflow."""
        self._pool_apps.extend(batch.corpus)
        self._pool_labels.extend(batch.market_labels.astype(bool))
        self._pool_obs.extend(self._study(batch.corpus))
        overflow = len(self._pool_apps) - self.max_pool
        if overflow > 0:
            self._pool_apps = self._pool_apps[overflow:]
            self._pool_labels = self._pool_labels[overflow:]
            self._pool_obs = self._pool_obs[overflow:]

    def _rebaseline_monitors(self) -> None:
        """Reset drift windows against the (new) serving model.

        The PSI reference becomes the training pool's column
        frequencies under the serving model's feature space — drift is
        always measured relative to what the *current* model was
        trained on.
        """
        if self.monitors is None:
            return
        self.monitors.reset()
        psi = getattr(self.monitors, "psi", None)
        if psi is not None and self.checker.feature_space is not None:
            self.monitors.set_psi_reference(
                self.checker.feature_space.encode_batch(self._pool_obs)
            )

    def _observe_month(self, batch, predicted: np.ndarray) -> None:
        """Feed the month into the drift monitors (labeled-lag + PSI).

        The market's review labels stand in for the labeled-lag
        feedback stream — by the time a month closes, its reviews have
        landed — and the month's traffic (encoded under the *serving*
        model's feature space) updates the population-stability view.
        """
        if self.monitors is None:
            return
        f1_monitor = getattr(self.monitors, "f1", None)
        if f1_monitor is not None:
            f1_monitor.update_many(
                predicted, batch.market_labels.astype(bool)
            )
        psi = getattr(self.monitors, "psi", None)
        if psi is not None and psi._reference is not None:  # noqa: SLF001
            month_obs = self._pool_obs[-len(batch.corpus):]
            self.monitors.record_block(
                self.checker.feature_space.encode_batch(month_obs)
            )

    def run_month(self) -> MonthlyRecord:
        """Vet one month with the current model, then maybe retrain.

        Without a ``retrain_policy`` the loop retrains unconditionally
        (the paper's monthly cadence).  With one, the policy is asked
        after the month's traffic is vetted, absorbed, and fed to the
        drift monitors; a False decision skips the retrain entirely —
        the month still joins the pool, feeding whichever later retrain
        the policy does fire.

        With a ``model_gate`` installed, a retrained candidate only
        replaces the serving model when the gate promotes it; otherwise
        the month's data is still absorbed (it feeds the *next*
        retrain) but the previous model keeps serving.
        """
        batch = self.stream.next_month()
        verdicts = self.checker.vet_batch(batch.corpus)
        predicted = np.array([v.malicious for v in verdicts])
        report = evaluate(batch.market_labels, predicted)
        self._absorb(batch)
        self._observe_month(batch, predicted)
        decision = None
        retrain = True
        if self.retrain_policy is not None:
            decision = self.retrain_policy.should_retrain(
                batch.month_index, monitors=self.monitors
            )
            retrain = bool(decision.retrain)
        promotion = None
        if retrain:
            candidate = self._retrain()
            self.retrain_count += 1
            if self.retrain_policy is not None:
                self.retrain_policy.record_retrain(batch.month_index)
            if self.model_gate is None:
                self.checker = candidate
                self._rebaseline_monitors()
            else:
                # The month's study observations are the pool tail
                # (eviction drops from the front), a ready-made replay
                # set for shadow agreement scoring.
                month_obs = self._pool_obs[-len(batch.corpus):]
                promotion = self.model_gate(
                    candidate,
                    month_obs,
                    metadata={"month": batch.month_index},
                )
                if getattr(promotion, "promoted", True):
                    self.checker = candidate
                    self._rebaseline_monitors()
        record = MonthlyRecord(
            month=batch.month_index,
            report=report,
            n_key_apis=int(self.checker.key_api_ids.size),
            sdk_size=len(self.stream.sdk),
            pool_size=len(self._pool_apps),
            promotion=promotion,
            retrained=retrain,
            decision=decision,
        )
        self.history.append(record)
        return record

    def run(self, months: int) -> list[MonthlyRecord]:
        """Run several monthly cycles; returns the new records."""
        if months < 1:
            raise ValueError("months must be >= 1")
        return [self.run_month() for _ in range(months)]
