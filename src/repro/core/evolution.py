"""Monthly model evolution (§5.3).

APICHECKER retrains every month: the training pool absorbs the month's
newly reviewed submissions, the key-API selection is re-run (the SDK
itself gains APIs every few months), and the classifier is refit.  The
paper observes the key-API count drifting only slightly (425–432,
Fig. 14) while online precision/recall stay above 98%/96% (Fig. 12).

Online metrics are measured *prospectively*: each month's submissions
are vetted with the model trained on prior months only, then folded
into the pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.checker import ApiChecker
from repro.core.engine import DynamicAnalysisEngine
from repro.core.features import AppObservation
from repro.corpus.generator import AppCorpus
from repro.corpus.market import MarketStream
from repro.emulator.backends import GoogleEmulator
from repro.ml.metrics import ClassificationReport, evaluate


@dataclass(frozen=True)
class MonthlyRecord:
    """One month of online operation.

    Attributes:
        month: 1-based month index.
        report: prospective precision/recall for the month's traffic.
        n_key_apis: size of the key set after the month's retraining
            (of the *serving* model: a gate-rejected candidate leaves
            the previous model's key set in place).
        sdk_size: SDK API count that month.
        pool_size: training-pool size after absorption.
        promotion: the gate's decision for the month's retrained
            candidate (None when no ``model_gate`` is installed and the
            swap was unconditional).  Carries ``promoted``,
            ``agreement``, and ``reason`` when a
            :class:`repro.serve.evolution.ShadowPromotionGate` is wired
            in.
    """

    month: int
    report: ClassificationReport
    n_key_apis: int
    sdk_size: int
    pool_size: int
    promotion: object | None = None


class EvolutionLoop:
    """Drives monthly vet-then-retrain cycles over a market stream.

    Args:
        stream: the market's monthly submission stream.
        initial_corpus: bootstrap training corpus.
        initial_labels: review labels for the bootstrap corpus
            (default: corpus ground truth).
        max_pool: training-pool size cap (oldest entries evicted).
        checker_seed: seed for retrained checkers.
        monkey_events: UI events per analysis.
        model_gate: optional promotion gate called as
            ``gate(candidate, month_observations, metadata=...)`` after
            each retrain.  When it returns a decision whose
            ``promoted`` attribute is False, the month's candidate is
            discarded and the previous model keeps serving — monthly
            evolution becomes promote-on-threshold instead of an
            unconditional replace (see
            :class:`repro.serve.evolution.ShadowPromotionGate`).
            ``None`` preserves the historical unconditional swap.
    """

    def __init__(
        self,
        stream: MarketStream,
        initial_corpus: AppCorpus,
        initial_labels: np.ndarray | None = None,
        max_pool: int = 8000,
        checker_seed: int = 0,
        monkey_events: int = 5000,
        model_gate: Callable[..., object] | None = None,
    ):
        if max_pool < len(initial_corpus):
            raise ValueError("max_pool must hold at least the initial corpus")
        self.stream = stream
        self.max_pool = max_pool
        self.monkey_events = monkey_events
        self.model_gate = model_gate
        self._checker_seed = checker_seed
        self._rng = np.random.default_rng(checker_seed)
        labels = (
            initial_corpus.labels if initial_labels is None
            else np.asarray(initial_labels)
        )
        self._pool_apps = list(initial_corpus)
        self._pool_labels = list(np.asarray(labels, dtype=bool))
        self._pool_obs = self._study(initial_corpus)
        self.checker = self._retrain()
        self.history: list[MonthlyRecord] = []

    def _study(self, corpus: AppCorpus | list) -> list[AppObservation]:
        """All-API study observations for newly arrived apps."""
        engine = DynamicAnalysisEngine(
            self.stream.sdk,
            tracked_api_ids=np.arange(len(self.stream.sdk)),
            primary=GoogleEmulator(),
            fallback=None,
            monkey_events=self.monkey_events,
            seed=int(self._rng.integers(2**31)),
        )
        return engine.observations(corpus)

    def _retrain(self) -> ApiChecker:
        corpus = AppCorpus(self.stream.sdk, list(self._pool_apps))
        checker = ApiChecker(
            self.stream.sdk,
            monkey_events=self.monkey_events,
            seed=self._checker_seed,
        )
        checker.fit(
            corpus,
            labels=np.array(self._pool_labels, dtype=bool),
            study_observations=list(self._pool_obs),
        )
        return checker

    def _absorb(self, batch) -> None:
        """Add a reviewed month to the pool, evicting oldest overflow."""
        self._pool_apps.extend(batch.corpus)
        self._pool_labels.extend(batch.market_labels.astype(bool))
        self._pool_obs.extend(self._study(batch.corpus))
        overflow = len(self._pool_apps) - self.max_pool
        if overflow > 0:
            self._pool_apps = self._pool_apps[overflow:]
            self._pool_labels = self._pool_labels[overflow:]
            self._pool_obs = self._pool_obs[overflow:]

    def run_month(self) -> MonthlyRecord:
        """Vet one month with the current model, then retrain.

        With a ``model_gate`` installed, the retrained candidate only
        replaces the serving model when the gate promotes it; otherwise
        the month's data is still absorbed (it feeds the *next*
        retrain) but the previous model keeps serving.
        """
        batch = self.stream.next_month()
        verdicts = self.checker.vet_batch(batch.corpus)
        predicted = np.array([v.malicious for v in verdicts])
        report = evaluate(batch.market_labels, predicted)
        self._absorb(batch)
        candidate = self._retrain()
        promotion = None
        if self.model_gate is None:
            self.checker = candidate
        else:
            # The month's study observations are the pool tail (eviction
            # drops from the front), a ready-made replay set for shadow
            # agreement scoring.
            month_obs = self._pool_obs[-len(batch.corpus):]
            promotion = self.model_gate(
                candidate,
                month_obs,
                metadata={"month": batch.month_index},
            )
            if getattr(promotion, "promoted", True):
                self.checker = candidate
        record = MonthlyRecord(
            month=batch.month_index,
            report=report,
            n_key_apis=int(self.checker.key_api_ids.size),
            sdk_size=len(self.stream.sdk),
            pool_size=len(self._pool_apps),
            promotion=promotion,
        )
        self.history.append(record)
        return record

    def run(self, months: int) -> list[MonthlyRecord]:
        """Run several monthly cycles; returns the new records."""
        if months < 1:
            raise ValueError("months must be >= 1")
        return [self.run_month() for _ in range(months)]
