"""Capacity planning for market-scale vetting (§5.2 operations).

The deployed APICHECKER vets ~10K apps/day on one 16-slot server at
1.92 minutes end-to-end per app.  This module answers the operator
questions around that number: how many servers does a target daily
volume need, what queueing delay will developers see at a given
utilization, and how much headroom a deployment has before submission
spikes start backing up.

The waiting-time model is the standard M/G/c heavy-traffic
approximation (Allen–Cunneen): accurate enough for provisioning, and
exactly the kind of envelope calculation an operator runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.emulator.cluster import AnalysisServer

MINUTES_PER_DAY = 24.0 * 60.0


@dataclass(frozen=True)
class AnalysisLoadModel:
    """Empirical per-app analysis-time distribution.

    Attributes:
        mean_minutes: mean analysis time per app.
        cv2: squared coefficient of variation of the analysis time
            (captures the right-skew of Figs. 9/11).
    """

    mean_minutes: float
    cv2: float

    def __post_init__(self):
        if self.mean_minutes <= 0:
            raise ValueError("mean_minutes must be positive")
        if self.cv2 < 0:
            raise ValueError("cv2 must be non-negative")

    @classmethod
    def from_samples(cls, minutes) -> "AnalysisLoadModel":
        """Fit from measured per-app analysis minutes."""
        arr = np.asarray(list(minutes), dtype=float)
        if arr.size < 2:
            raise ValueError("need at least two samples")
        if arr.min() <= 0:
            raise ValueError("analysis times must be positive")
        mean = float(arr.mean())
        return cls(mean_minutes=mean, cv2=float(arr.var() / mean**2))


@dataclass(frozen=True)
class CapacityPlan:
    """Provisioning answer for one target load."""

    apps_per_day: int
    servers: int
    slots: int
    utilization: float
    mean_wait_minutes: float
    headroom_apps_per_day: float

    @property
    def mean_turnaround_minutes(self) -> float:
        """Queueing wait plus the analysis itself (what a developer sees)."""
        return self.mean_wait_minutes + self._service_minutes

    # Set by the planner; stored privately to keep the dataclass frozen.
    _service_minutes: float = 0.0


class CapacityPlanner:
    """Sizes a vetting deployment for a target daily volume."""

    def __init__(
        self,
        load: AnalysisLoadModel,
        server: AnalysisServer | None = None,
        max_utilization: float = 0.9,
    ):
        if not 0 < max_utilization < 1:
            raise ValueError("max_utilization must be in (0, 1)")
        self.load = load
        self.server = server or AnalysisServer()
        self.max_utilization = max_utilization

    def slots_needed(self, apps_per_day: int) -> int:
        """Minimum emulator slots keeping utilization under the cap."""
        if apps_per_day <= 0:
            raise ValueError("apps_per_day must be positive")
        work_minutes = apps_per_day * self.load.mean_minutes
        return max(
            1,
            math.ceil(work_minutes / (MINUTES_PER_DAY * self.max_utilization)),
        )

    def servers_needed(self, apps_per_day: int) -> int:
        return math.ceil(
            self.slots_needed(apps_per_day) / self.server.emulator_slots
        )

    def utilization(self, apps_per_day: int, servers: int) -> float:
        if servers <= 0:
            raise ValueError("servers must be positive")
        slots = servers * self.server.emulator_slots
        return (
            apps_per_day * self.load.mean_minutes / (slots * MINUTES_PER_DAY)
        )

    def mean_wait_minutes(self, apps_per_day: int, servers: int) -> float:
        """Allen–Cunneen M/G/c mean queueing delay.

        Submissions arrive roughly Poisson over the day; service times
        follow the measured distribution (via its CV²).
        """
        rho = self.utilization(apps_per_day, servers)
        if rho >= 1.0:
            return float("inf")
        c = servers * self.server.emulator_slots
        service = self.load.mean_minutes
        # Erlang-C via the iterative form, scaled by the G-correction.
        a = rho * c  # offered load in Erlangs
        erlang_b = 1.0
        for k in range(1, c + 1):
            erlang_b = a * erlang_b / (k + a * erlang_b)
        p_wait = erlang_b / (1.0 - rho + rho * erlang_b)
        wait_mm1c = p_wait * service / (c * (1.0 - rho))
        return wait_mm1c * (1.0 + self.load.cv2) / 2.0

    def plan(self, apps_per_day: int) -> CapacityPlan:
        """Full provisioning answer for a target volume."""
        servers = self.servers_needed(apps_per_day)
        slots = servers * self.server.emulator_slots
        rho = self.utilization(apps_per_day, servers)
        capacity = (
            slots * MINUTES_PER_DAY * self.max_utilization
            / self.load.mean_minutes
        )
        plan = CapacityPlan(
            apps_per_day=apps_per_day,
            servers=servers,
            slots=slots,
            utilization=rho,
            mean_wait_minutes=self.mean_wait_minutes(apps_per_day, servers),
            headroom_apps_per_day=capacity - apps_per_day,
            _service_minutes=self.load.mean_minutes,
        )
        return plan

    def max_daily_volume(self, servers: int) -> float:
        """Largest daily volume ``servers`` machines can absorb at the
        utilization cap."""
        if servers <= 0:
            raise ValueError("servers must be positive")
        slots = servers * self.server.emulator_slots
        return (
            slots * MINUTES_PER_DAY * self.max_utilization
            / self.load.mean_minutes
        )
