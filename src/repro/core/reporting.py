"""Analysis-log serialization.

The paper promises to release its analysis logs to the community; this
module defines the corresponding on-disk format here: JSON-lines, one
record per analyzed app, capturing the observation (invoked APIs with
counts, permissions, intents) plus the verdict when available.  Logs
round-trip losslessly, so a vetting service can be audited or a model
retrained offline from recorded traffic alone.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.core.checker import VetVerdict
from repro.core.features import AppObservation

FORMAT_VERSION = 1


@dataclass(frozen=True)
class LogRecord:
    """One serialized analysis: observation plus optional verdict."""

    observation: AppObservation
    verdict: VetVerdict | None = None

    def to_dict(self) -> dict:
        obs = self.observation
        record = {
            "v": FORMAT_VERSION,
            "md5": obs.apk_md5,
            "apis": list(obs.invoked_api_ids),
            "api_counts": [list(pair) for pair in obs.invoked_api_counts],
            "permissions": list(obs.permissions),
            "intents": list(obs.intents),
            "minutes": obs.analysis_minutes,
        }
        if self.verdict is not None:
            record["verdict"] = {
                "malicious": self.verdict.malicious,
                "probability": self.verdict.probability,
                "minutes": self.verdict.analysis_minutes,
                "fell_back": self.verdict.fell_back,
            }
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "LogRecord":
        version = record.get("v")
        if version != FORMAT_VERSION:
            raise ValueError(f"unsupported log format version: {version!r}")
        obs = AppObservation(
            apk_md5=record["md5"],
            invoked_api_ids=tuple(int(i) for i in record["apis"]),
            permissions=tuple(record["permissions"]),
            intents=tuple(record["intents"]),
            analysis_minutes=float(record.get("minutes", 0.0)),
            invoked_api_counts=tuple(
                (int(a), int(c)) for a, c in record.get("api_counts", [])
            ),
        )
        verdict = None
        if "verdict" in record:
            v = record["verdict"]
            verdict = VetVerdict(
                apk_md5=record["md5"],
                malicious=bool(v["malicious"]),
                probability=float(v["probability"]),
                analysis_minutes=float(v["minutes"]),
                fell_back=bool(v["fell_back"]),
            )
        return cls(observation=obs, verdict=verdict)


def write_log(
    path: str | Path,
    observations: Iterable[AppObservation],
    verdicts: Iterable[VetVerdict | None] | None = None,
) -> int:
    """Write analysis records as JSON lines; returns the record count.

    ``verdicts``, when given, must align one-to-one with
    ``observations`` (use None entries for apps without verdicts).
    """
    path = Path(path)
    observations = list(observations)
    if verdicts is None:
        verdict_list: list[VetVerdict | None] = [None] * len(observations)
    else:
        verdict_list = list(verdicts)
        if len(verdict_list) != len(observations):
            raise ValueError("verdicts must align with observations")
    with path.open("w", encoding="utf-8") as fh:
        for obs, verdict in zip(observations, verdict_list):
            fh.write(json.dumps(LogRecord(obs, verdict).to_dict()))
            fh.write("\n")
    return len(observations)


def read_log(path: str | Path) -> Iterator[LogRecord]:
    """Yield records from a JSON-lines analysis log."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_no}: malformed log line"
                ) from exc
            yield LogRecord.from_dict(record)


def read_observations(path: str | Path) -> list[AppObservation]:
    """Convenience: just the observations (e.g. for offline retraining)."""
    return [record.observation for record in read_log(path)]
