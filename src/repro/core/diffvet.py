"""Differential re-vetting of app updates.

T-Market's traffic is ~85% updates, and §5.2 notes that flagged updates
"can be quickly vetted based on their previous versions".  This module
generalizes that observation into a pipeline stage: when an update's
*static* profile (declared API call sites, permissions, intents) is
near-identical to a version APICHECKER already scanned, the previous
verdict is inherited at negligible cost; only meaningfully changed
updates pay for a full dynamic scan.

The similarity gate is deliberately conservative — permissions or
intents appearing that the parent never had always force a full scan,
because permission creep is exactly how update attacks smuggle
capability in.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.android.apk import Apk
from repro.core.checker import ApiChecker, VetVerdict
from repro.obs import MetricsRegistry

#: Simulated cost of a differential check (seconds): a static diff.
DIFF_CHECK_SECONDS = 4.0

#: Counter keys the vetter maintains (registry: ``diffvet_<key>_total``).
DIFFVET_STAT_KEYS = ("full_scans", "fast_paths")


@dataclass(frozen=True)
class DiffVetStats:
    """Typed snapshot of a :class:`DiffVetter`'s counters.

    Mirrors the :class:`repro.core.engine.EngineStats` pattern: the
    counters live in a :class:`~repro.obs.MetricsRegistry` (one stats
    surface for the whole stack) and this view is how code reads them.
    """

    full_scans: int
    fast_paths: int

    @classmethod
    def from_registry(cls, registry: MetricsRegistry) -> "DiffVetStats":
        return cls(
            full_scans=int(registry.value("diffvet_full_scans_total")),
            fast_paths=int(registry.value("diffvet_fast_paths_total")),
        )

    @property
    def total(self) -> int:
        return self.full_scans + self.fast_paths

    @property
    def fast_path_fraction(self) -> float:
        return self.fast_paths / self.total if self.total else 0.0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict rendering of the counters (one key per stat)."""
        return {key: getattr(self, key) for key in DIFFVET_STAT_KEYS}


@dataclass(frozen=True)
class StaticProfile:
    """The static fingerprint used for differential comparison."""

    api_ids: frozenset[int]
    hidden_api_ids: frozenset[int]
    permissions: frozenset[str]
    intents: frozenset[str]

    @classmethod
    def of(cls, apk: Apk) -> "StaticProfile":
        return cls(
            api_ids=frozenset(apk.dex.direct_api_ids),
            hidden_api_ids=frozenset(apk.dex.reflection_api_ids),
            permissions=frozenset(apk.manifest.requested_permissions),
            intents=frozenset(apk.dex.sent_intents)
            | frozenset(apk.manifest.receiver_intent_actions),
        )

    def jaccard(self, other: "StaticProfile") -> float:
        """API-set similarity (direct plus hidden call sites)."""
        a = self.api_ids | self.hidden_api_ids
        b = other.api_ids | other.hidden_api_ids
        if not a and not b:
            return 1.0
        return len(a & b) / len(a | b)

    def gained_capability(self, parent: "StaticProfile") -> bool:
        """Did this version request anything the parent never did?"""
        return bool(
            (self.permissions - parent.permissions)
            or (self.intents - parent.intents)
            or (self.hidden_api_ids - parent.hidden_api_ids)
        )


@dataclass(frozen=True)
class DiffDecision:
    """Outcome of the differential gate for one submission."""

    apk_md5: str
    fast_path: bool
    verdict: VetVerdict | None
    reason: str
    similarity: float = 0.0


class DiffVetter:
    """Wraps a fitted :class:`ApiChecker` with update-aware fast paths.

    Args:
        checker: the fitted detector handling full scans.
        similarity_threshold: minimum API-set Jaccard similarity to the
            scanned parent for verdict inheritance.
        registry: metrics registry the scan counters land in (default:
            the checker's registry when it has one, else a private
            registry — same unification rule as the engine).
    """

    def __init__(
        self,
        checker: ApiChecker,
        similarity_threshold: float = 0.95,
        registry: MetricsRegistry | None = None,
    ):
        checker._require_fitted()
        if not 0.5 <= similarity_threshold <= 1.0:
            raise ValueError("similarity_threshold must be in [0.5, 1]")
        self.checker = checker
        self.similarity_threshold = similarity_threshold
        if registry is None:
            registry = checker.registry or MetricsRegistry()
        self.registry = registry
        self._profiles: dict[str, StaticProfile] = {}
        self._verdicts: dict[str, VetVerdict] = {}

    @property
    def stats_view(self) -> DiffVetStats:
        """Typed counter snapshot of the vetter's registry."""
        return DiffVetStats.from_registry(self.registry)

    def _full_scan(self, apk: Apk, reason: str) -> DiffDecision:
        verdict = self.checker.vet(apk)
        self._profiles[apk.md5] = StaticProfile.of(apk)
        self._verdicts[apk.md5] = verdict
        self.registry.inc("diffvet_full_scans_total")
        return DiffDecision(
            apk_md5=apk.md5, fast_path=False, verdict=verdict, reason=reason
        )

    def vet(self, apk: Apk) -> DiffDecision:
        """Vet one submission, differentially when safe."""
        parent_md5 = apk.parent_md5
        if parent_md5 is None or parent_md5 not in self._profiles:
            return self._full_scan(apk, reason="no scanned parent")
        parent_profile = self._profiles[parent_md5]
        profile = StaticProfile.of(apk)
        if profile.gained_capability(parent_profile):
            return self._full_scan(apk, reason="capability gained")
        similarity = profile.jaccard(parent_profile)
        if similarity < self.similarity_threshold:
            return self._full_scan(
                apk, reason=f"code churn (jaccard {similarity:.2f})"
            )
        parent_verdict = self._verdicts[parent_md5]
        verdict = VetVerdict(
            apk_md5=apk.md5,
            malicious=parent_verdict.malicious,
            probability=parent_verdict.probability,
            analysis_minutes=DIFF_CHECK_SECONDS / 60.0,
            fell_back=False,
        )
        self._profiles[apk.md5] = profile
        self._verdicts[apk.md5] = verdict
        self.registry.inc("diffvet_fast_paths_total")
        return DiffDecision(
            apk_md5=apk.md5,
            fast_path=True,
            verdict=verdict,
            reason="inherited from previous version",
            similarity=similarity,
        )

    def vet_batch(self, apps) -> list[DiffDecision]:
        """Vet in submission order so parents precede their updates."""
        return [self.vet(apk) for apk in apps]

    @property
    def fast_path_fraction(self) -> float:
        return self.stats_view.fast_path_fraction
