"""Daily market vetting service (§5.2 production operation).

One :class:`VettingService` instance is "the single commodity server"
running APICHECKER at T-Market: it takes a day's submissions, schedules
their analyses across the 16 emulator slots, classifies each app, and
runs the FP triage workflow on everything flagged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.checker import ApiChecker, VetVerdict
from repro.core.triage import FalsePositiveReport, TriageCenter
from repro.corpus.generator import AppCorpus
from repro.emulator.cluster import ScheduleReport, ServerCluster


@dataclass(frozen=True)
class DailyReport:
    """Operational summary of one vetting day.

    Attributes:
        n_apps: submissions processed.
        n_flagged: apps APICHECKER marked malicious.
        verdicts: per-app outcomes.
        schedule: cluster placement of the analyses.
        mean_minutes / median_minutes / max_minutes: per-app analysis
            time distribution.
        fp_report: outcome of the flagged-app triage (None when no
            ground truth was supplied).
    """

    n_apps: int
    n_flagged: int
    verdicts: tuple[VetVerdict, ...]
    schedule: ScheduleReport
    mean_minutes: float
    median_minutes: float
    max_minutes: float
    fp_report: FalsePositiveReport | None = None

    @property
    def throughput_per_day(self) -> float:
        return self.schedule.throughput_per_day()

    @property
    def flagged_fraction(self) -> float:
        return self.n_flagged / self.n_apps if self.n_apps else 0.0


class VettingService:
    """APICHECKER in production: vet, schedule, triage, repeat.

    Args:
        checker: a fitted :class:`ApiChecker`.
        cluster: the analysis hardware (default: one 16-slot server,
            matching the deployed system).
        triage: FP/FN triage center (default: one keyed to the
            checker's key-API set).
    """

    def __init__(
        self,
        checker: ApiChecker,
        cluster: ServerCluster | None = None,
        triage: TriageCenter | None = None,
    ):
        checker._require_fitted()
        self.checker = checker
        self.cluster = cluster or ServerCluster(n_servers=1)
        if triage is None:
            # Frequent keys (invoked by most apps, e.g. the negative-SRC
            # common-operation APIs) say nothing about attack capability
            # and are excluded from the "barely uses keys" count.
            exclude = None
            if checker.selection is not None:
                usage = checker.selection.usage_fraction
                exclude = np.flatnonzero(usage >= 0.5)
            triage = TriageCenter(
                checker.key_api_ids, exclude_api_ids=exclude
            )
        self.triage = triage
        self.days_processed = 0

    def process_day(
        self,
        submissions: AppCorpus,
        true_labels: np.ndarray | None = None,
    ) -> DailyReport:
        """Vet one day of submissions.

        Args:
            submissions: the day's APKs.
            true_labels: review-process labels; when given, flagged apps
                go through FP triage.
        """
        if len(submissions) == 0:
            raise ValueError("a vetting day needs at least one submission")
        verdicts = self.checker.vet_batch(submissions)
        minutes = np.array([v.analysis_minutes for v in verdicts])
        schedule = self.cluster.schedule(minutes)
        fp_report = None
        if true_labels is not None:
            fp_report = self.triage.triage_flagged(
                list(submissions), verdicts, np.asarray(true_labels)
            )
        self.days_processed += 1
        return DailyReport(
            n_apps=len(submissions),
            n_flagged=sum(v.malicious for v in verdicts),
            verdicts=tuple(verdicts),
            schedule=schedule,
            mean_minutes=float(minutes.mean()),
            median_minutes=float(np.median(minutes)),
            max_minutes=float(minutes.max()),
            fp_report=fp_report,
        )
