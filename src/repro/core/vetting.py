"""Daily market vetting service (§5.2 production operation).

One :class:`VettingService` instance is "the single commodity server"
running APICHECKER at T-Market: it takes a day's submissions, runs their
analyses through the parallel :class:`VettingPipeline` (a worker pool
sized to the 16 emulator slots, with crash requeue and an md5-keyed
observation cache for resubmission traffic), classifies each app, and
runs the FP triage workflow on everything flagged.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.checker import ApiChecker, VetVerdict
from repro.core.pipeline import ObservationCache, VettingPipeline
from repro.core.triage import FalsePositiveReport, TriageCenter
from repro.corpus.generator import AppCorpus
from repro.emulator.cluster import ScheduleReport, ServerCluster


@dataclass(frozen=True)
class DailyReport:
    """Operational summary of one vetting day.

    Attributes:
        n_apps: submissions processed.
        n_flagged: apps APICHECKER marked malicious.
        verdicts: per-app outcomes.
        schedule: per-slot timeline of the day's analyses, recorded from
            actual pipeline execution order.
        mean_minutes / median_minutes / max_minutes: per-app analysis
            time distribution (cache hits cost ~0 minutes).
        fp_report: outcome of the flagged-app triage (None when no
            ground truth was supplied).
        cache_hits: submissions served from the observation cache
            without re-emulation.
        requeues: crash/incompatibility requeues the pipeline handled.
    """

    n_apps: int
    n_flagged: int
    verdicts: tuple[VetVerdict, ...]
    schedule: ScheduleReport
    mean_minutes: float
    median_minutes: float
    max_minutes: float
    fp_report: FalsePositiveReport | None = None
    cache_hits: int = 0
    requeues: int = 0

    @property
    def throughput_per_day(self) -> float:
        return self.schedule.throughput_per_day()

    @property
    def flagged_fraction(self) -> float:
        return self.n_flagged / self.n_apps if self.n_apps else 0.0


class VettingService:
    """APICHECKER in production: vet, schedule, triage, repeat.

    Args:
        checker: a fitted :class:`ApiChecker`.
        cluster: the analysis hardware (default: one 16-slot server,
            matching the deployed system).
        triage: FP/FN triage center (default: one keyed to the
            checker's key-API set).
        workers: pipeline worker-pool size (default: every emulator
            slot the cluster has).
        cache: observation cache shared across days — an
            :class:`ObservationCache`, a persistence path, or ``True``
            for a fresh in-memory cache.  ``None`` disables caching and
            re-emulates every submission.
    """

    def __init__(
        self,
        checker: ApiChecker,
        cluster: ServerCluster | None = None,
        triage: TriageCenter | None = None,
        workers: int | None = None,
        cache: ObservationCache | str | Path | bool | None = None,
    ):
        checker._require_fitted()
        self.checker = checker
        self.cluster = cluster or ServerCluster(n_servers=1)
        if triage is None:
            # Frequent keys (invoked by most apps, e.g. the negative-SRC
            # common-operation APIs) say nothing about attack capability
            # and are excluded from the "barely uses keys" count.
            exclude = None
            if checker.selection is not None:
                usage = checker.selection.usage_fraction
                exclude = np.flatnonzero(usage >= 0.5)
            triage = TriageCenter(
                checker.key_api_ids, exclude_api_ids=exclude
            )
        self.triage = triage
        if cache is True:
            cache = ObservationCache()
        elif isinstance(cache, (str, Path)):
            cache = ObservationCache(cache)
        self.cache = cache
        self.pipeline = VettingPipeline(
            checker.production_engine,
            cluster=self.cluster,
            workers=workers,
            cache=self.cache,
        )
        self.days_processed = 0

    def process_day(
        self,
        submissions: AppCorpus,
        true_labels: np.ndarray | None = None,
    ) -> DailyReport:
        """Vet one day of submissions.

        Args:
            submissions: the day's APKs.
            true_labels: review-process labels; when given, flagged apps
                go through FP triage.
        """
        if len(submissions) == 0:
            raise ValueError("a vetting day needs at least one submission")
        result = self.pipeline.run(submissions)
        if result.failures:
            detail = "; ".join(f.reason for f in result.failures[:3])
            raise RuntimeError(
                f"{len(result.failures)} submissions could not be "
                f"analyzed by any backend: {detail}"
            )
        verdicts = [
            self.checker.verdict_from_observation(
                analysis.observation,
                analysis_minutes=analysis.total_minutes,
                fell_back=analysis.fell_back,
            )
            for analysis in result.analyses
        ]
        minutes = np.array([v.analysis_minutes for v in verdicts])
        fp_report = None
        if true_labels is not None:
            fp_report = self.triage.triage_flagged(
                list(submissions), verdicts, np.asarray(true_labels)
            )
        self.days_processed += 1
        return DailyReport(
            n_apps=len(submissions),
            n_flagged=sum(v.malicious for v in verdicts),
            verdicts=tuple(verdicts),
            schedule=result.schedule,
            mean_minutes=float(minutes.mean()),
            median_minutes=float(np.median(minutes)),
            max_minutes=float(minutes.max()),
            fp_report=fp_report,
            cache_hits=result.cache_hits,
            requeues=result.requeues,
        )
