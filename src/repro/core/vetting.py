"""Daily market vetting service (§5.2 production operation).

One :class:`VettingService` instance is "the single commodity server"
running APICHECKER at T-Market: it takes a day's submissions, runs their
analyses through the parallel :class:`VettingPipeline` (a worker pool
sized to the 16 emulator slots, with crash requeue and an md5-keyed
observation cache for resubmission traffic), classifies each app, and
runs the FP triage workflow on everything flagged.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from repro.core.checker import ApiChecker, VetVerdict
from repro.core.pipeline import (
    ObservationCache,
    VettingPipeline,
    render_summary,
    unified_counts,
)
from repro.core.triage import FalsePositiveReport, TriageCenter
from repro.corpus.generator import AppCorpus
from repro.emulator.cluster import ScheduleReport, ServerCluster
from repro.obs import MetricsRegistry, SpanSink, span
from repro.rules import BehaviorReport, RuleEvaluator


@dataclass(frozen=True)
class DailyReport:
    """Operational summary of one vetting day.

    Attributes:
        n_apps: submissions processed.
        n_flagged: apps APICHECKER marked malicious.
        verdicts: per-app outcomes.
        schedule: per-slot timeline of the day's analyses, recorded from
            actual pipeline execution order.
        mean_minutes / median_minutes / max_minutes: per-app analysis
            time distribution (cache hits cost ~0 minutes).
        fp_report: outcome of the flagged-app triage (None when no
            ground truth was supplied).
        cache_hits: submissions served from the observation cache
            without re-emulation.
        requeues: crash/incompatibility requeues the pipeline handled.
        n_analyzed: submissions that went through emulation.
        n_cached: submissions served from the cache.
        cache_misses: observation-cache misses this day.
        wall_seconds: real elapsed time of the day's pipeline run.
        workers: pipeline worker-pool size used.
        behavior_reports: one rule-evidence report per *flagged* app
            (submission order) when the service runs with a rule
            evaluator; empty otherwise.
    """

    n_apps: int
    n_flagged: int
    verdicts: tuple[VetVerdict, ...]
    schedule: ScheduleReport
    mean_minutes: float
    median_minutes: float
    max_minutes: float
    fp_report: FalsePositiveReport | None = None
    cache_hits: int = 0
    requeues: int = 0
    n_analyzed: int = 0
    n_cached: int = 0
    cache_misses: int = 0
    wall_seconds: float = 0.0
    workers: int = 0
    behavior_reports: tuple[BehaviorReport, ...] = ()

    def explanation_for(self, md5: str) -> BehaviorReport | None:
        """The rule-evidence report for one flagged app, if any."""
        for report in self.behavior_reports:
            if report.apk_md5 == md5:
                return report
        return None

    @property
    def throughput_per_day(self) -> float:
        return self.schedule.throughput_per_day()

    @property
    def flagged_fraction(self) -> float:
        return self.n_flagged / self.n_apps if self.n_apps else 0.0

    def as_dict(self) -> dict:
        """Unified counts (same schema as ``PipelineResult.as_dict``).

        A day's report and a raw pipeline run print through one shape,
        so the CLI, the docs examples, and offline tooling all read the
        same keys (plus a ``flagged`` entry only a classified day has).
        """
        counts = unified_counts(
            submissions=self.n_apps,
            analyzed=self.n_analyzed,
            cached=self.n_cached,
            failures=0,  # process_day raises when any backend fails
            requeues=self.requeues,
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
            workers=self.workers,
            makespan_minutes=self.schedule.makespan_minutes,
            throughput_per_day=self.schedule.throughput_per_day(),
            wall_seconds=self.wall_seconds,
        )
        counts["flagged"] = self.n_flagged
        return counts

    def summary(self) -> str:
        """One-line operational summary (same shape as the pipeline's)."""
        counts = self.as_dict()
        return render_summary(counts) + f" | {counts['flagged']} flagged"


class VettingService:
    """APICHECKER in production: vet, schedule, triage, repeat.

    Args:
        checker: a fitted :class:`ApiChecker`.
        cluster: the analysis hardware (default: one 16-slot server,
            matching the deployed system).
        triage: FP/FN triage center (default: one keyed to the
            checker's key-API set).
        workers: pipeline worker-pool size (default: every emulator
            slot the cluster has).
        cache: observation cache shared across days — an
            :class:`ObservationCache`, a persistence path, or ``True``
            for a fresh in-memory cache.  ``None`` disables caching and
            re-emulates every submission.
        registry: metrics registry service/pipeline telemetry lands in
            (default: the production engine's registry, so the whole
            stack reports through one surface).
        sink: optional span sink for per-day trace events (default:
            the production engine's sink).
        rules: behavioral rule evaluation for flagged apps — ``True``
            (default) compiles the bundled ruleset against the
            checker's key-API hook set, a :class:`~repro.rules.RuleEvaluator`
            is used as-is, and ``False``/``None`` disables it.
    """

    def __init__(
        self,
        checker: ApiChecker,
        cluster: ServerCluster | None = None,
        triage: TriageCenter | None = None,
        workers: int | None = None,
        cache: ObservationCache | str | Path | bool | None = None,
        registry: MetricsRegistry | None = None,
        sink: SpanSink | None = None,
        rules: RuleEvaluator | bool | None = True,
    ):
        checker._require_fitted()
        self.checker = checker
        self.cluster = cluster or ServerCluster(n_servers=1)
        self.registry = (
            registry
            if registry is not None
            else checker.production_engine.registry
        )
        self.sink = sink if sink is not None else checker.production_engine.sink
        if triage is None:
            # Frequent keys (invoked by most apps, e.g. the negative-SRC
            # common-operation APIs) say nothing about attack capability
            # and are excluded from the "barely uses keys" count.
            exclude = None
            if checker.selection is not None:
                usage = checker.selection.usage_fraction
                exclude = np.flatnonzero(usage >= 0.5)
            triage = TriageCenter(
                checker.key_api_ids, exclude_api_ids=exclude
            )
        self.triage = triage
        if cache is True:
            cache = ObservationCache()
        elif isinstance(cache, (str, Path)):
            cache = ObservationCache(cache)
        self.cache = cache
        self.pipeline = VettingPipeline(
            checker.production_engine,
            cluster=self.cluster,
            workers=workers,
            cache=self.cache,
            registry=self.registry,
            sink=self.sink,
        )
        if rules is True:
            rules = RuleEvaluator.builtin(
                checker.sdk,
                tracked_api_ids=checker.key_api_ids,
                registry=self.registry,
                sink=self.sink,
            )
        elif rules is False:
            rules = None
        self.rules = rules
        self.days_processed = 0

    def process_day(
        self,
        submissions: AppCorpus,
        true_labels: np.ndarray | None = None,
    ) -> DailyReport:
        """Vet one day of submissions.

        Args:
            submissions: the day's APKs.
            true_labels: review-process labels; when given, flagged apps
                go through FP triage.
        """
        if len(submissions) == 0:
            raise ValueError("a vetting day needs at least one submission")
        with span(
            "service_process_day",
            registry=self.registry,
            sink=self.sink,
            day=self.days_processed,
            submissions=len(submissions),
        ):
            result = self.pipeline.run(submissions)
            if result.failures:
                detail = "; ".join(f.reason for f in result.failures[:3])
                raise RuntimeError(
                    f"{len(result.failures)} submissions could not be "
                    f"analyzed by any backend: {detail}"
                )
            # One blocked scoring call for the whole day — the columnar
            # batch path, not a per-app loop.
            verdicts = self.checker.verdicts_from_observations(
                [a.observation for a in result.analyses],
                analysis_minutes=[a.total_minutes for a in result.analyses],
                fell_back=[a.fell_back for a in result.analyses],
            )
        minutes = np.array([v.analysis_minutes for v in verdicts])
        observations = [a.observation for a in result.analyses]
        behavior_reports: tuple[BehaviorReport, ...] = ()
        if self.rules is not None:
            flagged_obs = [
                obs
                for obs, verdict in zip(observations, verdicts)
                if verdict.malicious
            ]
            behavior_reports = tuple(self.rules.evaluate(flagged_obs))
        fp_report = None
        if true_labels is not None:
            fp_report = self.triage.triage_flagged(
                list(submissions), verdicts, np.asarray(true_labels)
            )
            if behavior_reports:
                # Share the one evaluation already done above instead of
                # scoring the same flagged observations twice.
                fp_report = replace(
                    fp_report, behavior_reports=behavior_reports
                )
        self.days_processed += 1
        n_flagged = sum(v.malicious for v in verdicts)
        self.registry.inc("service_days_total")
        self.registry.inc("service_submissions_total", len(submissions))
        self.registry.inc("service_flagged_total", n_flagged)
        self.registry.set_gauge(
            "service_throughput_per_day",
            result.schedule.throughput_per_day(),
        )
        return DailyReport(
            n_apps=len(submissions),
            n_flagged=n_flagged,
            verdicts=tuple(verdicts),
            schedule=result.schedule,
            mean_minutes=float(minutes.mean()),
            median_minutes=float(np.median(minutes)),
            max_minutes=float(minutes.max()),
            fp_report=fp_report,
            cache_hits=result.cache_hits,
            requeues=result.requeues,
            n_analyzed=result.n_analyzed,
            n_cached=result.n_cached,
            cache_misses=result.cache_misses,
            wall_seconds=result.wall_seconds,
            workers=result.workers,
            behavior_reports=behavior_reports,
        )
