"""Key-API selection: the paper's four-step strategy (§4.4).

1. **Set-C** — data-driven: Spearman-rank-correlation mining over the
   invocation matrix.  APIs with SRC >= +0.2 that are not *seldom*
   invoked qualify, plus APIs with SRC <= −0.2 that are *frequently*
   invoked (the paper found 13 such common-operation APIs).
2. **Set-P** — APIs guarded by dangerous/signature permissions (via the
   axplorer/PScout maps; here the registry carries the map directly).
3. **Set-S** — APIs performing one of five sensitive-operation
   categories, from domain knowledge.
4. The key set is the union Set-C ∪ Set-P ∪ Set-S (~426 APIs with ~16
   overlaps, Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.android.sdk import AndroidSdk
from repro.ml.stats import spearman_rho_columns

#: Paper thresholds.
SRC_THRESHOLD = 0.2
SELDOM_USAGE_FRACTION = 0.001   # invoked by fewer than 0.1% of apps
FREQUENT_USAGE_FRACTION = 0.5   # "frequently invoked by most apps"


@dataclass(frozen=True)
class KeyApiSelection:
    """Outcome of the four-step selection.

    Attributes:
        set_c / set_p / set_s: per-strategy API id arrays (sorted).
        key_api_ids: the union (sorted).
        src: SRC of every SDK API against malice (aligned with api_id).
        usage_fraction: share of apps invoking each API.
    """

    set_c: np.ndarray
    set_p: np.ndarray
    set_s: np.ndarray
    key_api_ids: np.ndarray
    src: np.ndarray
    usage_fraction: np.ndarray

    @property
    def n_keys(self) -> int:
        return int(self.key_api_ids.size)

    def venn_counts(self) -> dict[str, int]:
        """Exclusive/overlap region sizes as in Fig. 8."""
        c, p, s = map(
            lambda a: set(a.tolist()), (self.set_c, self.set_p, self.set_s)
        )
        return {
            "C_only": len(c - p - s),
            "P_only": len(p - c - s),
            "S_only": len(s - c - p),
            "C&P": len((c & p) - s),
            "C&S": len((c & s) - p),
            "P&S": len((p & s) - c),
            "C&P&S": len(c & p & s),
            "total": len(c | p | s),
        }

    def overlap_count(self) -> int:
        """Number of APIs belonging to more than one strategy set."""
        sizes = self.set_c.size + self.set_p.size + self.set_s.size
        return int(sizes - self.key_api_ids.size)

    def ranked_by_correlation(self) -> np.ndarray:
        """All SDK APIs ranked for a 'track top-n correlated' sweep.

        Non-seldom APIs come first (by descending absolute SRC), then
        seldom APIs — mirroring the paper's prioritization in Fig. 6.
        """
        abs_src = np.abs(self.src)
        non_seldom = self.usage_fraction >= SELDOM_USAGE_FRACTION
        order = np.lexsort((-abs_src, ~non_seldom))
        return order

    def top_correlated(self, n: int) -> np.ndarray:
        """The first n APIs of the correlation ranking (sorted ids)."""
        if n < 1:
            raise ValueError("n must be >= 1")
        return np.sort(self.ranked_by_correlation()[:n])


def invocation_matrix(
    observations, n_apis: int
) -> np.ndarray:
    """Binary (n_apps, n_apis) invoked-matrix from observations."""
    X = np.zeros((len(observations), n_apis), dtype=np.uint8)
    for i, obs in enumerate(observations):
        ids = np.asarray(obs.invoked_api_ids, dtype=int)
        if ids.size:
            X[i, ids] = 1
    return X


def mine_set_c(
    X_api: np.ndarray,
    y: np.ndarray,
    src_threshold: float = SRC_THRESHOLD,
    seldom_fraction: float = SELDOM_USAGE_FRACTION,
    frequent_fraction: float = FREQUENT_USAGE_FRACTION,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Statistical-correlation mining (Set-C).

    Args:
        X_api: binary invocation matrix over *all* SDK APIs.
        y: malice labels.

    Returns:
        (set_c_ids, src, usage_fraction).
    """
    y = np.asarray(y).astype(np.uint8)
    src = spearman_rho_columns(X_api, y)
    usage = X_api.mean(axis=0)
    positive = (src >= src_threshold) & (usage >= seldom_fraction)
    negative_frequent = (src <= -src_threshold) & (usage >= frequent_fraction)
    set_c = np.flatnonzero(positive | negative_frequent)
    return set_c, src, usage


def select_key_apis(
    X_api: np.ndarray,
    y: np.ndarray,
    sdk: AndroidSdk,
    src_threshold: float = SRC_THRESHOLD,
    seldom_fraction: float = SELDOM_USAGE_FRACTION,
    frequent_fraction: float = FREQUENT_USAGE_FRACTION,
) -> KeyApiSelection:
    """Run the full four-step strategy.

    ``X_api`` must cover every API of ``sdk`` (the study phase tracks
    everything once; production then only tracks the selected keys).
    """
    if X_api.shape[1] != len(sdk):
        raise ValueError(
            f"X_api has {X_api.shape[1]} columns but the SDK has "
            f"{len(sdk)} APIs"
        )
    set_c, src, usage = mine_set_c(
        X_api, y, src_threshold, seldom_fraction, frequent_fraction
    )
    set_p = np.sort(sdk.restricted_api_ids)
    set_s = np.sort(sdk.sensitive_api_ids)
    union = np.unique(np.concatenate([set_c, set_p, set_s]))
    return KeyApiSelection(
        set_c=np.sort(set_c),
        set_p=set_p,
        set_s=set_s,
        key_api_ids=union,
        src=src,
        usage_fraction=usage,
    )
