"""APICHECKER core: the paper's contribution.

* :mod:`repro.core.features` — one-hot feature construction over key
  APIs, requested permissions, and used intents (§4.2, §4.5).
* :mod:`repro.core.selection` — the four-step key-API selection
  strategy: SRC mining (Set-C), restrictive permissions (Set-P),
  sensitive operations (Set-S), and their union (§4.4).
* :mod:`repro.core.engine` — the dynamic-analysis engine with backend
  fallback and crash retry (§4.2, §5.1).
* :mod:`repro.core.checker` — the end-to-end ApiChecker train/vet
  pipeline.
* :mod:`repro.core.vetting` / :mod:`repro.core.triage` /
  :mod:`repro.core.evolution` — production operation: daily vetting,
  FP/FN triage, monthly model evolution (§5.2, §5.3).
"""

from repro.core.capacity import AnalysisLoadModel, CapacityPlanner
from repro.core.checker import ApiChecker, VetVerdict
from repro.core.diffvet import DiffDecision, DiffVetter
from repro.core.engine import AnalysisFailure, AppAnalysis, DynamicAnalysisEngine
from repro.core.evolution import EvolutionLoop, MonthlyRecord
from repro.core.features import (
    AppObservation,
    FeatureBlock,
    FeatureMode,
    FeatureSpace,
)
from repro.core.pipeline import (
    ObservationCache,
    PipelineResult,
    VettingPipeline,
)
from repro.core.selection import KeyApiSelection, select_key_apis
from repro.core.reporting import read_log, read_observations, write_log
from repro.core.triage import TriageCenter
from repro.core.vetting import DailyReport, VettingService

__all__ = [
    "AnalysisFailure",
    "AnalysisLoadModel",
    "ApiChecker",
    "CapacityPlanner",
    "AppAnalysis",
    "ObservationCache",
    "PipelineResult",
    "VettingPipeline",
    "DiffDecision",
    "DiffVetter",
    "AppObservation",
    "DailyReport",
    "DynamicAnalysisEngine",
    "EvolutionLoop",
    "FeatureBlock",
    "FeatureMode",
    "FeatureSpace",
    "KeyApiSelection",
    "MonthlyRecord",
    "TriageCenter",
    "VetVerdict",
    "VettingService",
    "read_log",
    "read_observations",
    "select_key_apis",
    "write_log",
]
