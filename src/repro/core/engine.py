"""Dynamic analysis engine: emulation + hooking + reliability plumbing.

Wraps the emulator substrate with the production behaviours of §5.1:
crash detection (the customized SystemServer reports exceptions to the
scheduling cores) with bounded retry, and fallback from the lightweight
Android-x86 engine to the Google full-system emulator for the <1% of
incompatible apps — so that *every* submitted app gets analyzed.

Randomness is derived **per app** from ``(engine seed, apk md5)``, not
from one shared stream: the observation an app produces depends only on
the app and the engine configuration, never on which other apps ran
before it or on which worker thread executed it.  This is what lets the
parallel pipeline (:mod:`repro.core.pipeline`) produce bit-identical
results to a sequential run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.android.apk import Apk
from repro.android.sdk import AndroidSdk
from repro.corpus.generator import AppCorpus
from repro.core.features import AppObservation
from repro.emulator.backends import (
    EmulatorBackend,
    EmulatorCrash,
    GoogleEmulator,
    IncompatibleAppError,
    LightweightEmulator,
)
from repro.emulator.device import DeviceEnvironment
from repro.emulator.hooks import HookEngine
from repro.emulator.monkey import MonkeyExerciser
from repro.emulator.runtime import EmulationResult, emulate_app
from repro.obs import (
    DEFAULT_MINUTES_BUCKETS,
    MetricsRegistry,
    SpanSink,
    span,
)

#: Sentinel distinguishing "use the default fallback" from "no fallback".
_DEFAULT_FALLBACK = object()

#: Counter keys the engine maintains (registry names: ``engine_<key>_total``).
ENGINE_STAT_KEYS = ("submissions", "analyzed", "crashes", "fallbacks",
                    "failures")


@dataclass(frozen=True)
class EngineStats:
    """Typed snapshot of one engine's counters, backed by its registry.

    The invariant the reliability story rests on:
    every submission ends up analyzed or failed —
    ``analyzed + failures <= submissions`` at all times, with equality
    once no analysis is in flight.
    """

    submissions: int
    analyzed: int
    crashes: int
    fallbacks: int
    failures: int
    crash_waste_minutes: float = 0.0

    @classmethod
    def from_registry(cls, registry: MetricsRegistry) -> "EngineStats":
        return cls(
            submissions=int(registry.value("engine_submissions_total")),
            analyzed=int(registry.value("engine_analyzed_total")),
            crashes=int(registry.value("engine_crashes_total")),
            fallbacks=int(registry.value("engine_fallbacks_total")),
            failures=int(registry.value("engine_failures_total")),
            crash_waste_minutes=float(
                registry.value("engine_crash_waste_minutes_total")
            ),
        )

    @property
    def settled(self) -> bool:
        """True when every submission reached a terminal outcome."""
        return self.analyzed + self.failures == self.submissions

    def as_dict(self) -> dict[str, int]:
        """Plain-dict rendering of the counters (one key per stat)."""
        return {key: getattr(self, key) for key in ENGINE_STAT_KEYS}


class AnalysisFailure(RuntimeError):
    """Every backend exhausted its retries for one app.

    Attributes:
        apk_md5: identity of the app that could not be analyzed.
        attempts: total emulation attempts made before giving up.
        wasted_minutes: simulated time burnt on the failed attempts.
    """

    def __init__(
        self,
        message: str,
        apk_md5: str = "",
        attempts: int = 0,
        wasted_minutes: float = 0.0,
    ):
        super().__init__(message)
        self.apk_md5 = apk_md5
        self.attempts = attempts
        self.wasted_minutes = wasted_minutes


@dataclass(frozen=True)
class AppAnalysis:
    """Engine output for one app.

    Attributes:
        observation: encoder-ready features.
        result: the successful emulation run.
        attempts: total emulation attempts (1 = clean first run).
        fell_back: True when the Google emulator had to take over.
        total_minutes: analysis time including failed attempts.
        from_cache: True when the observation was served from an
            :class:`~repro.core.pipeline.ObservationCache` hit (no
            emulation ran; ``result`` is None).
    """

    observation: AppObservation
    result: EmulationResult | None
    attempts: int
    fell_back: bool
    total_minutes: float
    from_cache: bool = False


class DynamicAnalysisEngine:
    """Analyzes apps on a primary backend with automatic fallback.

    Thread-safe: ``analyze`` may be called concurrently from pipeline
    workers; the stats counters are lock-protected and all per-app
    randomness comes from :meth:`rng_for`.

    Args:
        sdk: API registry.
        tracked_api_ids: APIs to hook (None/empty tracks nothing).
        primary: main backend (production: the lightweight engine).
        fallback: reliability backend (production: Google emulator);
            pass None to disable fallback.
        env: device environment (production: hardened).
        monkey_events: UI events per app (paper: 5K).
        max_retries: crash retries per backend before falling back.
        seed: rng seed for all stochastic parts.
        registry: metrics registry all counters/histograms land in
            (default: a fresh private registry, so each engine's counts
            stay exact in isolation; thread a shared registry through
            to unify pipeline/service/ML telemetry).
        sink: optional span sink receiving per-analysis trace events.
    """

    def __init__(
        self,
        sdk: AndroidSdk,
        tracked_api_ids: np.ndarray | list[int] | None = None,
        primary: EmulatorBackend | None = None,
        fallback: EmulatorBackend | None = _DEFAULT_FALLBACK,
        env: DeviceEnvironment | None = None,
        monkey_events: int = 5000,
        max_retries: int = 1,
        seed: int = 0,
        registry: MetricsRegistry | None = None,
        sink: SpanSink | None = None,
    ):
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self.sdk = sdk
        self.hooks = HookEngine(sdk, tracked_api_ids)
        self.primary = primary or LightweightEmulator()
        if fallback is _DEFAULT_FALLBACK:
            fallback = GoogleEmulator()
        self.fallback = fallback
        self.env = env or DeviceEnvironment.hardened_emulator()
        self.monkey = MonkeyExerciser(n_events=monkey_events, seed=seed)
        self.max_retries = max_retries
        self.seed = seed
        self.registry = registry if registry is not None else MetricsRegistry()
        self.sink = sink

    @property
    def tracked_api_ids(self) -> np.ndarray:
        return self.hooks.tracked_ids

    def rng_for(self, apk: Apk) -> np.random.Generator:
        """Per-app generator seeded from ``(engine seed, apk md5)``.

        The stream an app sees is a pure function of the app identity
        and the engine seed — independent of submission order, worker
        count, and whatever ran before — so sequential and parallel
        executions observe identical randomness.
        """
        return np.random.default_rng([self.seed, int(apk.md5[:16], 16)])

    def _bump(self, key: str, by: int = 1) -> None:
        self.registry.inc(f"engine_{key}_total", by)

    @property
    def stats_view(self) -> EngineStats:
        """Typed counter snapshot of the engine's registry."""
        return EngineStats.from_registry(self.registry)

    def crash_waste_minutes(self) -> float:
        """Simulated time a crashed attempt burns before detection.

        A crashed run still burns roughly half its UI time before the
        SystemServer exception surfaces to the scheduling cores.
        """
        return self.monkey.n_events * 126.0 / 5000 / 120

    def _attempt_chain(self) -> list[EmulatorBackend]:
        chain = [self.primary]
        if self.fallback is not None and self.fallback is not self.primary:
            chain.append(self.fallback)
        return chain

    @property
    def attempt_chain(self) -> list[EmulatorBackend]:
        """Backends in fallback order (primary first)."""
        return self._attempt_chain()

    def attempt(
        self,
        apk: Apk,
        backend: EmulatorBackend,
        rng: np.random.Generator,
    ) -> EmulationResult:
        """One emulation attempt of one app on one backend.

        This is the primitive both :meth:`analyze` and the parallel
        pipeline drive; it performs no retry or fallback itself.

        Raises:
            IncompatibleAppError: the app cannot run on this backend.
            EmulatorCrash: the run crashed (counted in ``stats``).
        """
        try:
            with span(
                "engine_attempt",
                registry=self.registry,
                sink=self.sink,
                backend=backend.name,
                md5=apk.md5,
            ):
                result = emulate_app(
                    apk,
                    self.sdk,
                    backend,
                    self.env,
                    self.hooks,
                    monkey=self.monkey,
                    rng=rng,
                )
        except EmulatorCrash:
            self._bump("crashes")
            # A crashed run burns emulator-slot time before the
            # SystemServer exception surfaces; account it here so both
            # the sequential and the pipelined paths agree.
            self.registry.inc(
                "engine_crash_waste_minutes_total",
                self.crash_waste_minutes(),
            )
            raise
        self.registry.observe(
            "engine_emulation_minutes",
            result.analysis_minutes,
            buckets=DEFAULT_MINUTES_BUCKETS,
            backend=backend.name,
        )
        return result

    def _finish(
        self,
        apk: Apk,
        result: EmulationResult,
        attempts: int,
        fell_back: bool,
        wasted_minutes: float,
    ) -> AppAnalysis:
        """Record a successful analysis and package the observation."""
        self._bump("analyzed")
        if fell_back:
            self._bump("fallbacks")
        obs = AppObservation(
            apk_md5=apk.md5,
            invoked_api_ids=result.hooked_api_ids,
            permissions=apk.manifest.requested_permissions,
            intents=result.observed_intents,
            analysis_minutes=result.analysis_minutes + wasted_minutes,
            invoked_api_counts=tuple(
                (r.api_id, r.count) for r in result.hook_records
            ),
        )
        return AppAnalysis(
            observation=obs,
            result=result,
            attempts=attempts,
            fell_back=fell_back,
            total_minutes=result.analysis_minutes + wasted_minutes,
        )

    def analyze(
        self, apk: Apk, rng: np.random.Generator | None = None
    ) -> AppAnalysis:
        """Analyze one app, retrying and falling back as needed.

        Args:
            apk: the app to analyze.
            rng: override the per-app generator (tests only; defaults
                to :meth:`rng_for`).

        Raises:
            AnalysisFailure: only if every backend exhausts its retries
                (with a Google-emulator fallback this is vanishingly
                rare; the production deployment analyzes all apps).
        """
        rng = rng if rng is not None else self.rng_for(apk)
        self._bump("submissions")
        attempts = 0
        wasted_minutes = 0.0
        fell_back = False
        last_error: Exception | None = None
        with span(
            "engine_analyze",
            registry=self.registry,
            sink=self.sink,
            md5=apk.md5,
        ):
            for backend_i, backend in enumerate(self._attempt_chain()):
                if backend_i > 0:
                    fell_back = True
                for _ in range(self.max_retries + 1):
                    attempts += 1
                    try:
                        result = self.attempt(apk, backend, rng)
                    except IncompatibleAppError as exc:
                        last_error = exc
                        break  # no point retrying on the same backend
                    except EmulatorCrash as exc:
                        last_error = exc
                        wasted_minutes += self.crash_waste_minutes()
                        continue
                    return self._finish(
                        apk, result, attempts, fell_back, wasted_minutes
                    )
            self._bump("failures")
            raise AnalysisFailure(
                f"all backends failed for {apk.package_name}: {last_error}",
                apk_md5=apk.md5,
                attempts=attempts,
                wasted_minutes=wasted_minutes,
            )

    def analyze_corpus(self, corpus: AppCorpus | list[Apk]) -> list[AppAnalysis]:
        """Analyze a batch of apps sequentially."""
        return [self.analyze(apk) for apk in corpus]

    def observations(
        self, corpus: AppCorpus | list[Apk]
    ) -> list[AppObservation]:
        """Convenience: analyze and keep only the observations."""
        return [a.observation for a in self.analyze_corpus(corpus)]
