"""Dynamic analysis engine: emulation + hooking + reliability plumbing.

Wraps the emulator substrate with the production behaviours of §5.1:
crash detection (the customized SystemServer reports exceptions to the
scheduling cores) with bounded retry, and fallback from the lightweight
Android-x86 engine to the Google full-system emulator for the <1% of
incompatible apps — so that *every* submitted app gets analyzed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.android.apk import Apk
from repro.android.sdk import AndroidSdk
from repro.corpus.generator import AppCorpus
from repro.core.features import AppObservation
from repro.emulator.backends import (
    EmulatorBackend,
    EmulatorCrash,
    GoogleEmulator,
    IncompatibleAppError,
    LightweightEmulator,
)
from repro.emulator.device import DeviceEnvironment
from repro.emulator.hooks import HookEngine
from repro.emulator.monkey import MonkeyExerciser
from repro.emulator.runtime import EmulationResult, emulate_app

#: Sentinel distinguishing "use the default fallback" from "no fallback".
_DEFAULT_FALLBACK = object()


@dataclass(frozen=True)
class AppAnalysis:
    """Engine output for one app.

    Attributes:
        observation: encoder-ready features.
        result: the successful emulation run.
        attempts: total emulation attempts (1 = clean first run).
        fell_back: True when the Google emulator had to take over.
        total_minutes: analysis time including failed attempts.
    """

    observation: AppObservation
    result: EmulationResult
    attempts: int
    fell_back: bool
    total_minutes: float


class DynamicAnalysisEngine:
    """Analyzes apps on a primary backend with automatic fallback.

    Args:
        sdk: API registry.
        tracked_api_ids: APIs to hook (None/empty tracks nothing).
        primary: main backend (production: the lightweight engine).
        fallback: reliability backend (production: Google emulator);
            pass None to disable fallback.
        env: device environment (production: hardened).
        monkey_events: UI events per app (paper: 5K).
        max_retries: crash retries per backend before falling back.
        seed: rng seed for all stochastic parts.
    """

    def __init__(
        self,
        sdk: AndroidSdk,
        tracked_api_ids: np.ndarray | list[int] | None = None,
        primary: EmulatorBackend | None = None,
        fallback: EmulatorBackend | None = _DEFAULT_FALLBACK,
        env: DeviceEnvironment | None = None,
        monkey_events: int = 5000,
        max_retries: int = 1,
        seed: int = 0,
    ):
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self.sdk = sdk
        self.hooks = HookEngine(sdk, tracked_api_ids)
        self.primary = primary or LightweightEmulator()
        if fallback is _DEFAULT_FALLBACK:
            fallback = GoogleEmulator()
        self.fallback = fallback
        self.env = env or DeviceEnvironment.hardened_emulator()
        self.monkey = MonkeyExerciser(n_events=monkey_events, seed=seed)
        self.max_retries = max_retries
        self._rng = np.random.default_rng(seed)
        self.stats = {"analyzed": 0, "crashes": 0, "fallbacks": 0}

    @property
    def tracked_api_ids(self) -> np.ndarray:
        return self.hooks.tracked_ids

    def _attempt_chain(self) -> list[EmulatorBackend]:
        chain = [self.primary]
        if self.fallback is not None and self.fallback is not self.primary:
            chain.append(self.fallback)
        return chain

    def analyze(self, apk: Apk) -> AppAnalysis:
        """Analyze one app, retrying and falling back as needed.

        Raises:
            RuntimeError: only if every backend exhausts its retries
                (with a Google-emulator fallback this is vanishingly
                rare; the production deployment analyzes all apps).
        """
        attempts = 0
        wasted_minutes = 0.0
        fell_back = False
        last_error: Exception | None = None
        for backend_i, backend in enumerate(self._attempt_chain()):
            if backend_i > 0:
                fell_back = True
            for _ in range(self.max_retries + 1):
                attempts += 1
                try:
                    result = emulate_app(
                        apk,
                        self.sdk,
                        backend,
                        self.env,
                        self.hooks,
                        monkey=self.monkey,
                        rng=self._rng,
                    )
                except IncompatibleAppError as exc:
                    last_error = exc
                    break  # no point retrying on the same backend
                except EmulatorCrash as exc:
                    last_error = exc
                    self.stats["crashes"] += 1
                    # A crashed run still burns roughly half its time
                    # before the SystemServer exception surfaces.
                    wasted_minutes += self.monkey.n_events * 126.0 / 5000 / 120
                    continue
                self.stats["analyzed"] += 1
                if fell_back:
                    self.stats["fallbacks"] += 1
                obs = AppObservation(
                    apk_md5=apk.md5,
                    invoked_api_ids=result.hooked_api_ids,
                    permissions=apk.manifest.requested_permissions,
                    intents=result.observed_intents,
                    analysis_minutes=result.analysis_minutes + wasted_minutes,
                    invoked_api_counts=tuple(
                        (r.api_id, r.count) for r in result.hook_records
                    ),
                )
                return AppAnalysis(
                    observation=obs,
                    result=result,
                    attempts=attempts,
                    fell_back=fell_back,
                    total_minutes=result.analysis_minutes + wasted_minutes,
                )
        raise RuntimeError(
            f"all backends failed for {apk.package_name}: {last_error}"
        )

    def analyze_corpus(self, corpus: AppCorpus | list[Apk]) -> list[AppAnalysis]:
        """Analyze a batch of apps sequentially."""
        return [self.analyze(apk) for apk in corpus]

    def observations(
        self, corpus: AppCorpus | list[Apk]
    ) -> list[AppObservation]:
        """Convenience: analyze and keep only the observations."""
        return [a.observation for a in self.analyze_corpus(corpus)]
