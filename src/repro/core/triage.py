"""False-positive / false-negative triage (§5.2).

The paper treats the two error classes asymmetrically:

* **False positives** are *actively* mitigated daily, because they anger
  developers: every flagged app is checked, and since ~90% of flagged
  apps are updates, they can be fast-vetted against their previous
  version (minutes instead of days of manual work).
* **False negatives** are handled *passively* on user reports.  Manual
  inspection of sampled FNs found 87% barely use the key APIs — simple
  functionality, mild threat — which justifies the passive stance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.android.apk import Apk
from repro.core.checker import VetVerdict
from repro.core.features import AppObservation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.rules import BehaviorReport, RuleEvaluator

#: Manual-inspection cost model (simulated minutes).
FAST_VET_MINUTES = 6.0          # diff against the previous version
FULL_MANUAL_MINUTES = 2 * 24 * 60.0  # "a couple of days" (§2)

#: An app "barely uses" the key APIs when its code touches at most this
#: many of them (the paper's FN analysis, §5.2).  Typical malware touches
#: around a hundred key APIs; low-key spyware touches a handful of
#: attack-relevant ones plus common-operation keys like file I/O.
BARELY_USES_KEYS_MAX = 25


@dataclass(frozen=True)
class FalsePositiveReport:
    """Daily FP-triage outcome.

    ``behavior_reports`` carries one rule-evidence report per *flagged*
    app (submission order) when the triage ran with a rule evaluator —
    the analyst working the FP queue starts from the named behavior and
    its concrete evidence instead of a bare probability.
    """

    n_flagged: int
    n_confirmed_malicious: int
    n_false_positives: int
    n_fast_vetted: int
    manual_minutes: float
    behavior_reports: tuple["BehaviorReport", ...] = ()

    @property
    def fast_vetted_fraction(self) -> float:
        return self.n_fast_vetted / self.n_flagged if self.n_flagged else 0.0


@dataclass(frozen=True)
class FalseNegativeReport:
    """User-report-driven FN-triage outcome.

    ``behavior_reports`` names what each *reported* app's observation
    did evidence (usually very little — that is the §5.2 point: FNs
    barely touch the monitored surface).
    """

    n_reports: int
    n_confirmed_malicious: int
    n_barely_using_keys: int
    manual_minutes: float
    behavior_reports: tuple["BehaviorReport", ...] = ()

    @property
    def barely_uses_keys_fraction(self) -> float:
        if not self.n_confirmed_malicious:
            return 0.0
        return self.n_barely_using_keys / self.n_confirmed_malicious


class TriageCenter:
    """Runs the manual-inspection workflows around APICHECKER."""

    def __init__(
        self,
        key_api_ids: np.ndarray,
        known_benign_md5s: set[str] | None = None,
        user_report_prob: float = 0.3,
        seed: int = 0,
        exclude_api_ids: np.ndarray | None = None,
    ):
        """Args:
            key_api_ids: the monitored key-API set.
            exclude_api_ids: keys not counted when judging whether an
                app "barely uses" the key set — typically the frequent
                common-operation keys (negative-SRC file I/O etc.),
                which every app touches and which say nothing about
                attack capability.
        """
        self.key_api_ids = set(np.asarray(key_api_ids, dtype=int).tolist())
        if exclude_api_ids is not None:
            self.key_api_ids -= set(
                np.asarray(exclude_api_ids, dtype=int).tolist()
            )
        self.known_benign_md5s = known_benign_md5s or set()
        if not 0 <= user_report_prob <= 1:
            raise ValueError("user_report_prob must be a probability")
        self.user_report_prob = user_report_prob
        self._rng = np.random.default_rng(seed)

    def key_api_usage(self, apk: Apk) -> int:
        """How many key APIs the app's code (direct or hidden) touches."""
        used = set(apk.dex.direct_api_ids) | set(apk.dex.reflection_api_ids)
        return len(used & self.key_api_ids)

    def triage_flagged(
        self,
        apps: list[Apk],
        verdicts: list[VetVerdict],
        true_labels: np.ndarray,
        *,
        observations: Sequence[AppObservation] | None = None,
        rules: "RuleEvaluator | None" = None,
    ) -> FalsePositiveReport:
        """Inspect every app APICHECKER flagged today.

        Updates whose previous version is known benign ride the fast
        path; everything else gets a full manual pass.  With ``rules``
        and per-app ``observations`` (aligned with ``apps``), every
        flagged app's observation is scored against the ruleset and the
        resulting :class:`~repro.rules.BehaviorReport`\\ s ride along on
        the returned report.
        """
        if not (len(apps) == len(verdicts) == len(true_labels)):
            raise ValueError("apps, verdicts and labels must align")
        if observations is not None and len(observations) != len(apps):
            raise ValueError("observations must align with apps")
        flagged = [
            (apk, bool(label))
            for apk, verdict, label in zip(apps, verdicts, true_labels)
            if verdict.malicious
        ]
        behavior_reports: tuple = ()
        if rules is not None and observations is not None:
            flagged_obs = [
                obs
                for obs, verdict in zip(observations, verdicts)
                if verdict.malicious
            ]
            behavior_reports = tuple(rules.evaluate(flagged_obs))
        n_fast = 0
        minutes = 0.0
        n_fp = 0
        for apk, truly_malicious in flagged:
            fast = (
                apk.is_update
                and (
                    apk.parent_md5 in self.known_benign_md5s
                    or truly_malicious  # family already characterized
                )
            )
            if fast:
                n_fast += 1
                minutes += FAST_VET_MINUTES
            else:
                minutes += FULL_MANUAL_MINUTES / 60.0  # triaged in parallel
            if not truly_malicious:
                n_fp += 1
                self.known_benign_md5s.add(apk.md5)
        for apk, verdict, label in zip(apps, verdicts, true_labels):
            if not verdict.malicious and not label:
                self.known_benign_md5s.add(apk.md5)
        return FalsePositiveReport(
            n_flagged=len(flagged),
            n_confirmed_malicious=sum(1 for _, m in flagged if m),
            n_false_positives=n_fp,
            n_fast_vetted=n_fast,
            manual_minutes=minutes,
            behavior_reports=behavior_reports,
        )

    def triage_user_reports(
        self,
        published: list[Apk],
        true_labels: np.ndarray,
        *,
        observations: Sequence[AppObservation] | None = None,
        rules: "RuleEvaluator | None" = None,
    ) -> FalseNegativeReport:
        """Handle user reports against published (passed) apps.

        Users report a share of the malicious apps that slipped through;
        each report triggers manual analysis (§5.2's passive workflow).
        With ``rules`` and aligned ``observations``, each reported app's
        observation is scored so the manual pass starts from whatever
        behavior evidence exists (typically near none — the FN point).
        """
        if len(published) != len(true_labels):
            raise ValueError("published apps and labels must align")
        if observations is not None and len(observations) != len(published):
            raise ValueError("observations must align with published apps")
        n_reports = 0
        n_confirmed = 0
        n_barely = 0
        minutes = 0.0
        reported_obs: list[AppObservation] = []
        for idx, (apk, label) in enumerate(zip(published, true_labels)):
            if not label:
                continue  # benign published apps do not draw reports
            if self._rng.random() >= self.user_report_prob:
                continue
            n_reports += 1
            minutes += FULL_MANUAL_MINUTES / 60.0
            n_confirmed += 1
            if self.key_api_usage(apk) <= BARELY_USES_KEYS_MAX:
                n_barely += 1
            if observations is not None:
                reported_obs.append(observations[idx])
        behavior_reports: tuple = ()
        if rules is not None and reported_obs:
            behavior_reports = tuple(rules.evaluate(reported_obs))
        return FalseNegativeReport(
            n_reports=n_reports,
            n_confirmed_malicious=n_confirmed,
            n_barely_using_keys=n_barely,
            manual_minutes=minutes,
            behavior_reports=behavior_reports,
        )
