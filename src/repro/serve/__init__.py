"""Online vetting service: durable queue, model registry, HTTP API.

The deployed APICHECKER is an *online* system — ~10K daily submissions
accepted continuously, vetted within hours, over a model that evolves
monthly without downtime (§6).  This package is that serving layer:

* :class:`SubmissionQueue` — write-ahead-logged, priority-laned,
  depth-bounded admission queue; a killed service replays its WAL on
  restart with no loss and no duplicate scoring.
* :class:`ModelRegistry` — versioned, hash-verified model artifacts
  with RW-locked hot-swap and shadow scoring of candidates against
  live traffic.
* :class:`RulesetRegistry` — the same treatment for behavior
  rulesets: versioned hash-verified JSON artifacts, atomic hot swap
  under the RW lock, pushed over ``POST /v1/admin/ruleset`` and rolled
  across every shard without dropping a request.
* :class:`ShadowPromotionGate` — turns
  :meth:`~repro.core.evolution.EvolutionLoop.run_month` retrains into
  promote-on-threshold decisions.
* :class:`OnlineVettingService` — queue → pipeline → verdict wiring
  on top of the batch engine stack.
* :func:`make_server` / :class:`VettingHTTPServer` — stdlib HTTP JSON
  API, all routes under ``/v1`` in one declarative route table
  (``/v1/submit``, ``/v1/result/<md5>``, ``/v1/healthz``,
  ``/v1/metrics``) with a unified error envelope (:data:`ERROR_CODES`).
* :class:`ShardRouter` / :func:`make_router_server` — the sharded
  multi-process tier: N worker processes, md5-routed
  (:func:`shard_of`), per-shard WAL segments, scatter/gather
  ``/v1/healthz`` and ``/v1/metrics`` at the front door.

See ``docs/serving.md`` for the durability model, promotion policy,
sharded topology, and API reference.
"""

from repro.serve.codec import apk_from_dict, apk_to_dict
from repro.serve.evolution import ShadowPromotionGate
from repro.serve.http import (
    API_PREFIX,
    ERROR_CODES,
    ROUTES,
    VettingHTTPServer,
    error_body,
    make_server,
)
from repro.serve.queue import (
    LANE_BULK,
    LANE_ESCALATED,
    LANE_RESUBMIT,
    LANES,
    QueueFullError,
    SubmissionQueue,
    SubmissionRecord,
    WrongShardError,
    shard_of,
)
from repro.serve.registry import (
    IntegrityError,
    ModelRegistry,
    ModelVersion,
    PromotionDecision,
    RWLock,
    ScoredSubmission,
)
from repro.serve.rulesets import (
    BUILTIN_RULESET_VERSION,
    RulesetRegistry,
    RulesetVersion,
)
from repro.serve.service import DrainStatus, OnlineVettingService
from repro.serve.shard import (
    ShardRouter,
    ShardUnavailableError,
    make_router_server,
)

__all__ = [
    "API_PREFIX",
    "BUILTIN_RULESET_VERSION",
    "ERROR_CODES",
    "LANE_BULK",
    "LANE_ESCALATED",
    "LANE_RESUBMIT",
    "LANES",
    "ROUTES",
    "DrainStatus",
    "IntegrityError",
    "ModelRegistry",
    "ModelVersion",
    "OnlineVettingService",
    "PromotionDecision",
    "QueueFullError",
    "RWLock",
    "RulesetRegistry",
    "RulesetVersion",
    "ScoredSubmission",
    "ShadowPromotionGate",
    "ShardRouter",
    "ShardUnavailableError",
    "SubmissionQueue",
    "SubmissionRecord",
    "VettingHTTPServer",
    "WrongShardError",
    "apk_from_dict",
    "apk_to_dict",
    "error_body",
    "make_router_server",
    "make_server",
    "shard_of",
]
