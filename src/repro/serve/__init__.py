"""Online vetting service: durable queue, model registry, HTTP API.

The deployed APICHECKER is an *online* system — ~10K daily submissions
accepted continuously, vetted within hours, over a model that evolves
monthly without downtime (§6).  This package is that serving layer:

* :class:`SubmissionQueue` — write-ahead-logged, priority-laned,
  depth-bounded admission queue; a killed service replays its WAL on
  restart with no loss and no duplicate scoring.
* :class:`ModelRegistry` — versioned, hash-verified model artifacts
  with RW-locked hot-swap and shadow scoring of candidates against
  live traffic.
* :class:`ShadowPromotionGate` — turns
  :meth:`~repro.core.evolution.EvolutionLoop.run_month` retrains into
  promote-on-threshold decisions.
* :class:`OnlineVettingService` — queue → pipeline → verdict wiring
  on top of the batch engine stack.
* :func:`make_server` / :class:`VettingHTTPServer` — stdlib HTTP JSON
  API (``/submit``, ``/result/<md5>``, ``/healthz``, ``/metrics``).

See ``docs/serving.md`` for the durability model, promotion policy,
and API reference.
"""

from repro.serve.codec import apk_from_dict, apk_to_dict
from repro.serve.evolution import ShadowPromotionGate
from repro.serve.http import VettingHTTPServer, make_server
from repro.serve.queue import (
    LANE_BULK,
    LANE_ESCALATED,
    LANE_RESUBMIT,
    LANES,
    QueueFullError,
    SubmissionQueue,
    SubmissionRecord,
)
from repro.serve.registry import (
    IntegrityError,
    ModelRegistry,
    ModelVersion,
    PromotionDecision,
    RWLock,
    ScoredSubmission,
)
from repro.serve.service import OnlineVettingService

__all__ = [
    "LANE_BULK",
    "LANE_ESCALATED",
    "LANE_RESUBMIT",
    "LANES",
    "IntegrityError",
    "ModelRegistry",
    "ModelVersion",
    "OnlineVettingService",
    "PromotionDecision",
    "QueueFullError",
    "RWLock",
    "ScoredSubmission",
    "ShadowPromotionGate",
    "SubmissionQueue",
    "SubmissionRecord",
    "VettingHTTPServer",
    "apk_from_dict",
    "apk_to_dict",
    "make_server",
]
