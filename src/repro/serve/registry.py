"""Versioned model registry: persisted artifacts, hot-swap, shadow scoring.

APICHECKER retrains monthly (§5.3) and the deployed service swaps the
new model in without downtime.  This module makes that swap safe:

* every published model is pickled to a versioned artifact file with a
  SHA-256 recorded in a ``manifest.json``; loads verify the hash, so a
  corrupted or tampered artifact can never be activated;
* the active model is replaced atomically under a reader/writer lock —
  every request scores under a read lease, so one request can never see
  two model versions, and a swap waits for in-flight scores;
* a **shadow** candidate scores the same live traffic in parallel with
  the active model; its verdict agreement is tracked, and promotion is
  a threshold decision on that agreement rather than an unconditional
  replace.  Candidates that disagree too much are rolled back and the
  decision is recorded in the manifest.
"""

from __future__ import annotations

import hashlib
import json
import pickle
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.checker import ApiChecker, VetVerdict
from repro.core.features import AppObservation
from repro.obs import MetricsRegistry

__all__ = [
    "IntegrityError",
    "ModelVersion",
    "PromotionDecision",
    "RWLock",
    "ModelRegistry",
    "ScoredSubmission",
]

#: Manifest schema marker.
MANIFEST_VERSION = 1


class IntegrityError(RuntimeError):
    """A model artifact failed its hash check."""


class RWLock:
    """Reader/writer lock with writer preference.

    Many scoring threads hold read leases concurrently; a hot-swap takes
    the write side, which blocks new readers and waits for in-flight
    ones — the mechanism behind "no request ever sees a mixed-version
    model".
    """

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    class _Lease:
        __slots__ = ("_lock", "_write")

        def __init__(self, lock: "RWLock", write: bool):
            self._lock = lock
            self._write = write

        def __enter__(self):
            if self._write:
                self._lock.acquire_write()
            else:
                self._lock.acquire_read()
            return self

        def __exit__(self, *exc):
            if self._write:
                self._lock.release_write()
            else:
                self._lock.release_read()

    def read(self) -> "_Lease":
        return self._Lease(self, write=False)

    def write(self) -> "_Lease":
        return self._Lease(self, write=True)


@dataclass
class ModelVersion:
    """One published model artifact.

    Attributes:
        version: 1-based registry version number.
        filename: artifact file name inside the registry root.
        sha256: content hash of the pickled artifact.
        state: ``active`` / ``shadow`` / ``archived`` / ``rejected``.
        metadata: free-form provenance (e.g. evolution month, key-API
            count).
        created: publication wall time (epoch seconds).
    """

    version: int
    filename: str
    sha256: str
    state: str = "archived"
    metadata: dict = field(default_factory=dict)
    created: float = 0.0

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "filename": self.filename,
            "sha256": self.sha256,
            "state": self.state,
            "metadata": dict(self.metadata),
            "created": self.created,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "ModelVersion":
        return cls(
            version=int(record["version"]),
            filename=record["filename"],
            sha256=record["sha256"],
            state=record.get("state", "archived"),
            metadata=dict(record.get("metadata", {})),
            created=float(record.get("created", 0.0)),
        )


@dataclass(frozen=True)
class PromotionDecision:
    """Outcome of one promote-or-rollback evaluation of a shadow model.

    Attributes:
        candidate_version: the shadow model evaluated.
        promoted: True when the candidate became the active model.
        agreement: verdict agreement rate with the active model over
            the scored sample.
        n_scored: submissions both models scored.
        reason: human-readable decision rationale.
    """

    candidate_version: int
    promoted: bool
    agreement: float
    n_scored: int
    reason: str

    def to_dict(self) -> dict:
        return {
            "candidate_version": self.candidate_version,
            "promoted": self.promoted,
            "agreement": self.agreement,
            "n_scored": self.n_scored,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class ScoredSubmission:
    """One observation scored under a single read lease.

    Attributes:
        verdict: the **active** model's verdict (the served answer).
        model_version: active version that produced it.
        shadow_verdict: candidate's verdict for the same observation
            (None when no shadow is staged).
        shadow_version: candidate version, when staged.
    """

    verdict: VetVerdict
    model_version: int
    shadow_verdict: VetVerdict | None = None
    shadow_version: int | None = None

    @property
    def agreed(self) -> bool | None:
        if self.shadow_verdict is None:
            return None
        return self.shadow_verdict.malicious == self.verdict.malicious


class ModelRegistry:
    """Disk-backed registry of :class:`ApiChecker` artifacts.

    Args:
        root: directory holding artifacts and ``manifest.json``
            (created on demand).  Reopening a registry on an existing
            root restores the manifest and reloads the recorded active
            (and shadow) models.
        metrics: metrics registry for swap/shadow telemetry.
    """

    def __init__(
        self,
        root: str | Path,
        metrics: MetricsRegistry | None = None,
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._manifest_path = self.root / "manifest.json"
        self._lock = RWLock()
        self._mutate = threading.Lock()  # serializes publish/manifest writes
        self.versions: dict[int, ModelVersion] = {}
        self.decisions: list[PromotionDecision] = []
        self._active: tuple[int, ApiChecker] | None = None
        self._shadow: tuple[int, ApiChecker] | None = None
        # Live shadow agreement tally for the currently staged candidate.
        self._shadow_agree = 0
        self._shadow_scored = 0
        if self._manifest_path.exists():
            self._restore()

    # ------------------------------------------------------------------
    # Manifest persistence
    # ------------------------------------------------------------------

    def _save_manifest(self) -> None:
        payload = {
            "v": MANIFEST_VERSION,
            "versions": [
                self.versions[v].to_dict() for v in sorted(self.versions)
            ],
            "decisions": [d.to_dict() for d in self.decisions],
        }
        tmp = self._manifest_path.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8"
        )
        tmp.replace(self._manifest_path)

    def _restore(self) -> None:
        payload = json.loads(self._manifest_path.read_text(encoding="utf-8"))
        if payload.get("v") != MANIFEST_VERSION:
            raise ValueError(
                f"unsupported manifest version: {payload.get('v')!r}"
            )
        for record in payload.get("versions", []):
            mv = ModelVersion.from_dict(record)
            self.versions[mv.version] = mv
        self.decisions = [
            PromotionDecision(**d) for d in payload.get("decisions", [])
        ]
        for mv in self.versions.values():
            if mv.state == "active":
                self._active = (mv.version, self.load(mv.version))
            elif mv.state == "shadow":
                self._shadow = (mv.version, self.load(mv.version))
        self._publish_gauges()

    # ------------------------------------------------------------------
    # Artifact lifecycle
    # ------------------------------------------------------------------

    def publish(
        self,
        checker: ApiChecker,
        metadata: dict | None = None,
        activate: bool = False,
    ) -> ModelVersion:
        """Persist a fitted model as a new version.

        The artifact is written to a temp file and renamed into place,
        so a crash mid-publish never leaves a half-written artifact
        behind a manifest entry.
        """
        checker._require_fitted()
        with self._mutate:
            version = max(self.versions, default=0) + 1
            filename = f"model_v{version:04d}.pkl"
            blob = pickle.dumps(checker, protocol=pickle.HIGHEST_PROTOCOL)
            digest = hashlib.sha256(blob).hexdigest()
            tmp = self.root / (filename + ".tmp")
            tmp.write_bytes(blob)
            tmp.replace(self.root / filename)
            mv = ModelVersion(
                version=version,
                filename=filename,
                sha256=digest,
                state="archived",
                metadata=dict(metadata or {}),
                created=time.time(),
            )
            self.versions[version] = mv
            self._save_manifest()
            self.metrics.inc("serve_models_published_total")
        if activate:
            self.activate(version)
        return mv

    def load(self, version: int) -> ApiChecker:
        """Unpickle one version, verifying its recorded hash."""
        mv = self._version(version)
        blob = (self.root / mv.filename).read_bytes()
        digest = hashlib.sha256(blob).hexdigest()
        if digest != mv.sha256:
            raise IntegrityError(
                f"model v{version} artifact hash mismatch: "
                f"manifest {mv.sha256[:12]}…, file {digest[:12]}…"
            )
        return pickle.loads(blob)

    def _version(self, version: int) -> ModelVersion:
        try:
            return self.versions[version]
        except KeyError:
            raise KeyError(f"unknown model version {version}") from None

    # ------------------------------------------------------------------
    # Hot swap + shadow staging
    # ------------------------------------------------------------------

    def activate(self, version: int) -> None:
        """Atomically make ``version`` the active model.

        The artifact is loaded and hash-verified *before* the write
        lock is taken, so the swap's critical section is a pointer
        exchange — in-flight read leases finish, the swap happens, new
        leases see the new model.
        """
        checker = self.load(version)
        with self._mutate:
            with self._lock.write():
                previous = self._active
                self._active = (version, checker)
                if self._shadow is not None and self._shadow[0] == version:
                    self._shadow = None
                    self._reset_shadow_tally()
            if previous is not None and previous[0] in self.versions:
                prior = self.versions[previous[0]]
                if prior.state == "active":
                    prior.state = "archived"
            self.versions[version].state = "active"
            self._save_manifest()
            self.metrics.inc("serve_model_swaps_total")
            self._publish_gauges()

    def stage_shadow(self, version: int) -> None:
        """Stage a candidate to shadow-score live traffic."""
        checker = self.load(version)
        with self._mutate:
            with self._lock.write():
                self._shadow = (version, checker)
                self._reset_shadow_tally()
            for mv in self.versions.values():
                if mv.state == "shadow":
                    mv.state = "archived"
            self.versions[version].state = "shadow"
            self._save_manifest()
            self._publish_gauges()

    def clear_shadow(self, state: str = "archived") -> None:
        with self._mutate:
            with self._lock.write():
                staged = self._shadow
                self._shadow = None
                self._reset_shadow_tally()
            if staged is not None and staged[0] in self.versions:
                self.versions[staged[0]].state = state
                self._save_manifest()
            self._publish_gauges()

    @property
    def active_version(self) -> int | None:
        with self._lock.read():
            return self._active[0] if self._active is not None else None

    @property
    def shadow_version(self) -> int | None:
        with self._lock.read():
            return self._shadow[0] if self._shadow is not None else None

    def active_checker(self) -> ApiChecker:
        """The live model (raises when none has been activated)."""
        with self._lock.read():
            if self._active is None:
                raise RuntimeError("no active model in the registry")
            return self._active[1]

    @contextmanager
    def lease(self):
        """Read lease over a consistent ``(version, active, shadow)``.

        Everything a caller does with the yielded models — analysis,
        scoring, shadow comparison — sees one registry state; a
        concurrent :meth:`activate` waits for the lease to end.  Do not
        call tally- or manifest-mutating registry methods inside the
        lease (they take the mutate lock, inverting the lock order with
        a waiting writer); use :meth:`record_shadow_result` after.
        """
        self._lock.acquire_read()
        try:
            if self._active is None:
                raise RuntimeError("no active model in the registry")
            yield self._active[0], self._active[1], self._shadow
        finally:
            self._lock.release_read()

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------

    def score(self, observation: AppObservation) -> ScoredSubmission:
        """Score one observation under a single read lease.

        The active and (when staged) shadow models are both resolved
        and applied without releasing the lease, so a concurrent
        promotion can never produce a mixed-version answer; the shadow
        comparison feeds the live agreement tally.
        """
        with self.lease() as (active_version, active, shadow):
            verdict = active.verdict_from_observation(observation)
            shadow_verdict = None
            shadow_version = None
            if shadow is not None:
                shadow_version, shadow_checker = shadow
                shadow_verdict = shadow_checker.verdict_from_observation(
                    observation
                )
        scored = ScoredSubmission(
            verdict=verdict,
            model_version=active_version,
            shadow_verdict=shadow_verdict,
            shadow_version=shadow_version,
        )
        self.metrics.inc("serve_scored_total")
        if scored.agreed is not None:
            self.record_shadow_result(scored.agreed)
        return scored

    def record_shadow_result(self, agreed: bool) -> None:
        """Fold one active-vs-shadow verdict comparison into the tally."""
        with self._mutate:
            self._shadow_scored += 1
            if agreed:
                self._shadow_agree += 1
        self.metrics.inc(
            "serve_shadow_agree_total"
            if agreed
            else "serve_shadow_disagree_total"
        )
        self.metrics.set_gauge(
            "serve_shadow_agreement_rate", self.shadow_agreement()[2]
        )

    def shadow_agreement(self) -> tuple[int, int, float]:
        """``(n_scored, n_agree, rate)`` for the staged candidate."""
        n, agree = self._shadow_scored, self._shadow_agree
        return n, agree, (agree / n if n else 0.0)

    def _reset_shadow_tally(self) -> None:
        self._shadow_agree = 0
        self._shadow_scored = 0

    # ------------------------------------------------------------------
    # Promotion policy
    # ------------------------------------------------------------------

    def promote_on_agreement(
        self,
        min_agreement: float = 0.95,
        min_samples: int = 20,
    ) -> PromotionDecision:
        """Promote the staged shadow iff its live agreement clears the bar.

        Below-threshold candidates are rejected (state ``rejected``)
        and the active model keeps serving; either way the decision is
        appended to the manifest for audit.
        """
        with self._lock.read():
            if self._shadow is None:
                raise RuntimeError("no shadow model staged")
            candidate = self._shadow[0]
        n, agree, rate = self.shadow_agreement()
        if n < min_samples:
            decision = PromotionDecision(
                candidate_version=candidate,
                promoted=False,
                agreement=rate,
                n_scored=n,
                reason=(
                    f"insufficient shadow sample: {n} < {min_samples}"
                ),
            )
        elif rate >= min_agreement:
            decision = PromotionDecision(
                candidate_version=candidate,
                promoted=True,
                agreement=rate,
                n_scored=n,
                reason=(
                    f"agreement {rate:.3f} >= {min_agreement:.3f} "
                    f"over {n} submissions"
                ),
            )
        else:
            decision = PromotionDecision(
                candidate_version=candidate,
                promoted=False,
                agreement=rate,
                n_scored=n,
                reason=(
                    f"agreement {rate:.3f} < {min_agreement:.3f} "
                    f"over {n} submissions; keeping active model"
                ),
            )
        if decision.promoted:
            self.activate(candidate)
            self.metrics.inc("serve_promotions_total")
        else:
            if n >= min_samples:
                self.clear_shadow(state="rejected")
                self.metrics.inc("serve_rollbacks_total")
        with self._mutate:
            self.decisions.append(decision)
            self._save_manifest()
        return decision

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------

    def _publish_gauges(self) -> None:
        active = self._active[0] if self._active is not None else 0
        shadow = self._shadow[0] if self._shadow is not None else 0
        self.metrics.set_gauge("serve_active_model_version", active)
        self.metrics.set_gauge("serve_shadow_model_version", shadow)
