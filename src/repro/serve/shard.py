"""Sharded multi-process serving tier: md5-routed shard workers.

One :class:`~repro.serve.service.OnlineVettingService` is a single
process — one GIL, one WAL, one dispatcher.  Market scale means
multiplying processes without giving up any per-shard guarantee, and
this module is that tier:

* :func:`~repro.serve.queue.shard_of` routes every submission by its
  content md5, so one APK's whole history — WAL records, coalescing,
  observation cache, terminal outcome — lives on exactly one shard;
* each shard is a **separate worker process** (``multiprocessing``
  spawn) running its own service over its own WAL segment
  (``<spool>/shard-NN/queue.wal``) and its own
  :class:`~repro.serve.registry.ModelRegistry` lease on the shared
  artifact directory — no shared mutable state anywhere;
* :class:`ShardRouter` is the scatter/gather front door: ``/v1/submit``
  proxied to the owning shard, ``/v1/result`` and ``/v1/explain``
  resolved shard-locally, ``/v1/healthz`` and ``/v1/metrics``
  aggregated across the fleet with a ``shard="<k>"`` label on every
  absorbed series.

The PR 3 exactly-once guarantee survives per shard: kill a worker
mid-batch (SIGKILL, no goodbye), :meth:`ShardRouter.restart_shard`
replays that shard's WAL segment, and every accepted submission still
reaches exactly one terminal outcome
(``tests/test_serve_shard.py::test_kill_one_shard_midbatch_replay_is_exactly_once``).
"""

from __future__ import annotations

import http.client
import json
import multiprocessing
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.android.apk import Apk
from repro.obs import MetricsRegistry
from repro.serve.codec import apk_to_dict
from repro.serve.http import (
    Response,
    VettingHTTPServer,
    error_body,
    make_server,
    parse_submission,
    retry_after_headers,
)
from repro.serve.queue import QueueFullError, shard_of

__all__ = [
    "RouterApi",
    "ShardHandle",
    "ShardRouter",
    "ShardUnavailableError",
    "make_router_server",
    "shard_spool",
]


class ShardUnavailableError(RuntimeError):
    """The shard owning an md5 is down or unreachable (HTTP 503)."""

    def __init__(self, shard_id: int, detail: str, md5: str | None = None):
        super().__init__(f"shard {shard_id} unavailable: {detail}")
        self.shard_id = shard_id
        self.md5 = md5


def shard_spool(spool_dir: str | Path, shard_id: int) -> Path:
    """The WAL segment directory of one shard (``<spool>/shard-NN``)."""
    return Path(spool_dir) / f"shard-{shard_id:02d}"


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------


def _shard_worker_main(
    conn,
    shard_id: int,
    n_shards: int,
    model_dir: str,
    spool: str,
    host: str,
    config: dict,
) -> None:
    """Entry point of one shard worker process.

    Builds a fully private stack — metrics registry, model-registry
    lease, WAL-backed queue, dispatcher, HTTP server on an ephemeral
    port — reports readiness over the pipe, then serves until told to
    stop (or until the parent disappears).  Module-level so the spawn
    start method can import it.
    """
    import signal

    from repro.serve.registry import ModelRegistry
    from repro.serve.service import OnlineVettingService

    # A terminal Ctrl-C delivers SIGINT to the whole foreground process
    # group, workers included.  Shutdown is coordinated by the router
    # (a "stop" message, or pipe EOF if the router died) — a raw
    # KeyboardInterrupt here would kill the worker before it can drain
    # and report abandoned submissions.  SIGTERM/SIGKILL still work.
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    try:
        metrics = MetricsRegistry()
        models = ModelRegistry(model_dir, metrics=metrics)
        service = OnlineVettingService(
            models,
            spool_dir=spool,
            shard=(shard_id, n_shards),
            metrics=metrics,
            **config,
        )
        service.start()
        server = make_server(service, host, 0)
        server.start_background()
        conn.send(
            (
                "ready",
                {
                    "shard": shard_id,
                    "port": server.port,
                    "replayed": int(
                        metrics.value("serve_wal_replayed_total")
                    ),
                    "model_version": models.active_version,
                },
            )
        )
    except Exception as exc:  # pragma: no cover - startup failure path
        try:
            conn.send(("error", {"shard": shard_id, "detail": repr(exc)}))
        finally:
            conn.close()
        raise
    try:
        while True:
            # Block on the pipe; EOF means the router died — shut down
            # rather than serve orphaned.
            try:
                if not conn.poll(0.25):
                    continue
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message == "stop":
                break
    finally:
        server.stop()
        abandoned = service.close()
        try:
            conn.send(("stopped", {"abandoned": sorted(abandoned)}))
            conn.close()
        except (BrokenPipeError, OSError):  # router already gone
            pass


# ----------------------------------------------------------------------
# Router side
# ----------------------------------------------------------------------


class _ShardClient:
    """Pooled keep-alive HTTP client to one shard worker.

    Connections are HTTP/1.1 keep-alive and reused across requests
    (one per concurrently proxying router thread); a stale pooled
    connection is retried once on a fresh one before the shard is
    declared unavailable.
    """

    def __init__(self, host: str, port: int, timeout: float):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._pool: list[http.client.HTTPConnection] = []
        self._lock = threading.Lock()

    def _connection(self) -> http.client.HTTPConnection:
        with self._lock:
            if self._pool:
                return self._pool.pop()
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    def _release(self, conn: http.client.HTTPConnection) -> None:
        with self._lock:
            self._pool.append(conn)

    def request(
        self, method: str, path: str, body: bytes | None = None
    ) -> tuple[int, bytes]:
        headers = {"Content-Type": "application/json"} if body else {}
        last_error: Exception | None = None
        for attempt in range(2):
            conn = (
                self._connection()
                if attempt == 0
                else http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout
                )
            )
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                data = response.read()
            except (http.client.HTTPException, OSError) as exc:
                conn.close()
                last_error = exc
                continue
            self._release(conn)
            return response.status, data
        raise ConnectionError(f"shard at :{self.port}: {last_error!r}")

    def close(self) -> None:
        with self._lock:
            for conn in self._pool:
                conn.close()
            self._pool.clear()


@dataclass
class ShardHandle:
    """One live (or dead) shard worker as the router sees it."""

    shard_id: int
    process: multiprocessing.process.BaseProcess
    conn: object
    port: int
    replayed: int
    model_version: int | None
    client: _ShardClient = field(repr=False)

    @property
    def alive(self) -> bool:
        return self.process.is_alive()


class ShardRouter:
    """Spawns N shard workers and scatter/gathers the ``/v1`` API.

    Args:
        model_dir: the shared model-artifact directory; every worker
            opens its own :class:`ModelRegistry` over it (per-shard
            lease, read-only at serve time).  Must already hold an
            active version.
        spool_dir: parent of the per-shard WAL segments
            (``shard-00/ … shard-NN/``); each worker replays only its
            own segment on start.
        n_shards: worker-process count; also the modulus of
            :func:`shard_of`, so it must stay constant across restarts
            of the same spool (changing it re-homes md5s).
        host: interface the workers and router bind.
        workers / batch_size / max_depth / cache / poll_seconds /
            rules / pace_seconds_per_minute: per-shard service
            configuration, forwarded verbatim to each worker's
            :class:`OnlineVettingService`.
        drift_monitors: ``True`` gives every worker its own default
            :class:`~repro.drift.detectors.DriftMonitorBank` (monitor
            objects cannot cross the spawn boundary, so only the flag
            is forwarded); per-shard drift status is aggregated by
            :meth:`healthz` and the drift gauges arrive with the
            scraped per-shard metrics.
        metrics: the *router's* registry (request counters, shard-up
            gauges).  Worker registries are private to their processes
            and scraped over HTTP.
        mp_start: multiprocessing start method.  ``spawn`` (default)
            gives workers a clean interpreter with no inherited locks;
            ``fork`` starts faster when the parent is single-threaded.
        start_timeout: seconds to wait for every worker to report ready.
        request_timeout: per-proxy-request timeout.
    """

    def __init__(
        self,
        model_dir: str | Path,
        spool_dir: str | Path,
        n_shards: int,
        host: str = "127.0.0.1",
        workers: int = 2,
        batch_size: int = 8,
        max_depth: int = 10_000,
        cache: bool | str = True,
        poll_seconds: float = 0.05,
        rules: bool = True,
        pace_seconds_per_minute: float = 0.0,
        drift_monitors: bool = False,
        metrics: MetricsRegistry | None = None,
        mp_start: str = "spawn",
        start_timeout: float = 120.0,
        request_timeout: float = 30.0,
    ):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.model_dir = str(model_dir)
        self.spool_dir = Path(spool_dir)
        self.n_shards = n_shards
        self.host = host
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.mp_start = mp_start
        self.start_timeout = start_timeout
        self.request_timeout = request_timeout
        self._config = {
            "workers": workers,
            "batch_size": batch_size,
            "max_depth": max_depth,
            "cache": cache,
            "poll_seconds": poll_seconds,
            "rules": rules,
            "pace_seconds_per_minute": pace_seconds_per_minute,
            "drift_monitors": bool(drift_monitors),
        }
        self.shards: dict[int, ShardHandle] = {}
        self._ctx = multiprocessing.get_context(mp_start)
        self.started_at: float | None = None

    # -- lifecycle -----------------------------------------------------

    def _spawn(self, shard_id: int):
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_shard_worker_main,
            args=(
                child_conn,
                shard_id,
                self.n_shards,
                self.model_dir,
                str(shard_spool(self.spool_dir, shard_id)),
                self.host,
                self._config,
            ),
            name=f"serve-shard-{shard_id:02d}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return process, parent_conn

    def _await_ready(self, shard_id, process, conn) -> ShardHandle:
        deadline = time.monotonic() + self.start_timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not (
                process.is_alive() or conn.poll(0)
            ):
                process.terminate()
                raise ShardUnavailableError(
                    shard_id, "worker did not report ready"
                )
            try:
                if not conn.poll(min(remaining, 0.25)):
                    continue
                kind, info = conn.recv()
            except (EOFError, OSError) as exc:
                process.terminate()
                raise ShardUnavailableError(
                    shard_id, f"worker died during startup ({exc!r})"
                ) from exc
            if kind == "error":
                raise ShardUnavailableError(shard_id, info["detail"])
            assert kind == "ready", kind
            handle = ShardHandle(
                shard_id=shard_id,
                process=process,
                conn=conn,
                port=info["port"],
                replayed=info["replayed"],
                model_version=info.get("model_version"),
                client=_ShardClient(
                    self.host, info["port"], self.request_timeout
                ),
            )
            self.metrics.set_gauge(
                "serve_shard_up", 1, shard=str(shard_id)
            )
            return handle

    def start(self) -> "ShardRouter":
        """Spawn every worker and wait until the whole fleet is ready."""
        if self.shards:
            return self
        spawned = [
            (shard_id, *self._spawn(shard_id))
            for shard_id in range(self.n_shards)
        ]
        for shard_id, process, conn in spawned:
            self.shards[shard_id] = self._await_ready(
                shard_id, process, conn
            )
        self.metrics.set_gauge("serve_shards", self.n_shards)
        self.started_at = time.time()
        return self

    def stop(self, timeout: float = 15.0) -> dict[int, frozenset[str]]:
        """Gracefully stop every worker.

        Returns ``{shard_id: abandoned md5s}`` — the submissions each
        shard left non-terminal (they stay in that shard's WAL and
        replay on the next start).  Unresponsive workers are terminated
        and report an unknown (empty) abandoned set.
        """
        abandoned: dict[int, frozenset[str]] = {}
        for shard_id, handle in self.shards.items():
            abandoned[shard_id] = frozenset()
            if not handle.alive:
                continue
            try:
                handle.conn.send("stop")
            except (BrokenPipeError, OSError):
                handle.process.terminate()
                continue
            deadline = time.monotonic() + timeout
            while time.monotonic() < deadline:
                try:
                    if not handle.conn.poll(0.25):
                        continue
                    kind, info = handle.conn.recv()
                except (EOFError, OSError):
                    break
                if kind == "stopped":
                    abandoned[shard_id] = frozenset(info["abandoned"])
                    break
            else:
                handle.process.terminate()
        for shard_id, handle in self.shards.items():
            handle.process.join(timeout)
            handle.client.close()
            self.metrics.set_gauge(
                "serve_shard_up", 0, shard=str(shard_id)
            )
            if abandoned[shard_id]:
                self.metrics.inc(
                    "serve_router_abandoned_total",
                    len(abandoned[shard_id]),
                    shard=str(shard_id),
                )
        self.shards.clear()
        return abandoned

    def kill_shard(self, shard_id: int) -> None:
        """SIGKILL one worker mid-flight (failure injection; no goodbye)."""
        handle = self._handle(shard_id)
        handle.process.kill()
        handle.process.join(10.0)
        handle.client.close()
        self.metrics.set_gauge("serve_shard_up", 0, shard=str(shard_id))

    def restart_shard(self, shard_id: int) -> int:
        """Respawn one worker over its existing WAL segment.

        The fresh process replays the segment — completed outcomes are
        recovered, uncompleted acceptances re-enqueued.  Returns the
        number of replayed (re-enqueued) submissions.
        """
        handle = self.shards.get(shard_id)
        if handle is not None and handle.alive:
            raise RuntimeError(f"shard {shard_id} is still running")
        process, conn = self._spawn(shard_id)
        self.shards[shard_id] = self._await_ready(shard_id, process, conn)
        self.metrics.inc(
            "serve_router_shard_restarts_total", shard=str(shard_id)
        )
        return self.shards[shard_id].replayed

    def _handle(self, shard_id: int) -> ShardHandle:
        try:
            return self.shards[shard_id]
        except KeyError:
            raise ShardUnavailableError(shard_id, "not started") from None

    # -- proxying ------------------------------------------------------

    def owner_of(self, md5: str) -> int:
        return shard_of(md5, self.n_shards)

    def proxy(
        self,
        shard_id: int,
        method: str,
        path: str,
        body: bytes | None = None,
        md5: str | None = None,
    ) -> tuple[int, bytes]:
        """One request to one shard; raises ShardUnavailableError."""
        handle = self._handle(shard_id)
        self.metrics.inc(
            "serve_router_requests_total", shard=str(shard_id)
        )
        if not handle.alive:
            self.metrics.inc(
                "serve_router_proxy_errors_total", shard=str(shard_id)
            )
            raise ShardUnavailableError(shard_id, "worker dead", md5)
        try:
            return handle.client.request(method, path, body)
        except ConnectionError as exc:
            self.metrics.inc(
                "serve_router_proxy_errors_total", shard=str(shard_id)
            )
            raise ShardUnavailableError(shard_id, str(exc), md5) from exc

    # -- python-level API (benchmarks, smoke, CLI) ---------------------

    def submit(self, apk: Apk, lane: str = "bulk") -> dict:
        """Route one submission to its owning shard.

        Returns the acceptance ticket.  Raises
        :class:`~repro.serve.queue.QueueFullError` on 429 and
        :class:`ShardUnavailableError` when the owning shard is down.
        """
        shard_id = self.owner_of(apk.md5)
        body = json.dumps(
            {"apk": apk_to_dict(apk), "lane": lane}
        ).encode("utf-8")
        status, data = self.proxy(
            shard_id, "POST", "/v1/submit", body, md5=apk.md5
        )
        payload = json.loads(data)
        if status == 429:
            raise QueueFullError(payload["error"]["message"])
        if status != 202:
            raise RuntimeError(
                f"shard {shard_id} rejected submit: {status} {payload}"
            )
        return payload

    def result(self, md5: str) -> dict:
        """The owning shard's view of one submission (any state)."""
        _, data = self.proxy(
            self.owner_of(md5), "GET", f"/v1/result/{md5}", md5=md5
        )
        return json.loads(data)

    def explain(self, md5: str) -> dict:
        _, data = self.proxy(
            self.owner_of(md5), "GET", f"/v1/explain/{md5}", md5=md5
        )
        return json.loads(data)

    def push_ruleset(self, data: bytes | str) -> dict:
        """Roll a new ruleset across every shard without dropping requests.

        Each worker validates, publishes, and atomically activates the
        pushed document behind its own write lock — in-flight
        micro-batches finish under the old version, later ones explain
        under the new one, and no submission ever sees a mix.  The
        roll is sequential; on a validation failure (ValueError) or an
        unreachable shard (:class:`ShardUnavailableError`) the roll
        stops, so re-push after fixing the cause — re-activation is
        idempotent in content (versions are per-shard counters).

        Returns ``{"ruleset_version": <max across shards>, "shards":
        {shard_id: receipt}}``.
        """
        body = data.encode("utf-8") if isinstance(data, str) else data
        receipts: dict[int, dict] = {}
        for shard_id in range(self.n_shards):
            status, raw = self.proxy(
                shard_id, "POST", "/v1/admin/ruleset", body
            )
            payload = json.loads(raw)
            if status != 200:
                detail = payload.get("error", {}).get(
                    "message", raw.decode("utf-8", "replace")
                )
                raise ValueError(
                    f"shard {shard_id} rejected ruleset: {detail}"
                )
            receipts[shard_id] = payload
        self.metrics.inc("serve_router_ruleset_pushes_total")
        return {
            "ruleset_version": max(
                r["ruleset_version"] for r in receipts.values()
            ),
            "n_rules": next(iter(receipts.values()))["n_rules"],
            "shards": {str(k): v for k, v in receipts.items()},
        }

    # -- scatter/gather ------------------------------------------------

    def healthz(self) -> dict:
        """Aggregated liveness with a per-shard breakdown.

        ``status`` is ``ok`` only when every shard is up and ok;
        ``degraded`` when any is down/unreachable (HTTP 503 at the
        front door).
        """
        shards = []
        depth = 0
        completed = 0
        all_ok = True
        agree_scored = 0
        agree_hits = 0
        drift_alarmed = False
        for shard_id in range(self.n_shards):
            handle = self.shards.get(shard_id)
            try:
                if handle is None or not handle.alive:
                    raise ShardUnavailableError(shard_id, "worker dead")
                status, data = self.proxy(
                    shard_id, "GET", "/v1/healthz"
                )
                health = json.loads(data)
                health["port"] = handle.port
                shards.append(health)
                depth += health.get("queue_depth", 0)
                completed += health.get("completed", 0)
                agreement = health.get("shadow_agreement") or {}
                agree_scored += agreement.get("n_scored", 0)
                agree_hits += agreement.get("n_agree", 0)
                drift = health.get("drift")
                if drift is not None and drift.get("alarmed"):
                    drift_alarmed = True
                all_ok &= health.get("status") == "ok"
            except ShardUnavailableError:
                shards.append(
                    {"shard": shard_id, "status": "unreachable"}
                )
                all_ok = False
        return {
            "status": "ok" if all_ok else "degraded",
            "n_shards": self.n_shards,
            "queue_depth": depth,
            "completed": completed,
            "uptime_seconds": (
                time.time() - self.started_at if self.started_at else 0.0
            ),
            "shadow_agreement": {
                "n_scored": agree_scored,
                "n_agree": agree_hits,
                "rate": (
                    agree_hits / agree_scored if agree_scored else 0.0
                ),
            },
            "drift_alarmed": drift_alarmed,
            "shards": shards,
        }

    def metrics_registry(self) -> MetricsRegistry:
        """One registry over the whole tier, every series shard-labelled.

        Scrapes each live worker's ``/v1/metrics.json`` snapshot and
        absorbs it with ``shard="<k>"``, then absorbs the router's own
        counters with ``shard="router"`` — cross-label sums are tier
        totals (the conservation law survives sharding).
        """
        aggregate = MetricsRegistry()
        for shard_id in range(self.n_shards):
            try:
                status, data = self.proxy(
                    shard_id, "GET", "/v1/metrics.json"
                )
            except ShardUnavailableError:
                continue
            if status == 200:
                aggregate.absorb(json.loads(data), shard=str(shard_id))
        aggregate.absorb(self.metrics.as_dict(), shard="router")
        return aggregate

    def metrics_text(self) -> str:
        return self.metrics_registry().to_prometheus()

    def __enter__(self) -> "ShardRouter":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


class RouterApi:
    """``/v1`` route handlers for the router front door.

    Same route table and error envelope as :class:`ServiceApi` —
    ``/v1/submit`` validated then proxied to the owning shard (the
    shard's own status/body pass through verbatim), ``/v1/result`` and
    ``/v1/explain`` resolved shard-locally, ``/v1/healthz`` and
    ``/v1/metrics`` scatter/gathered.
    """

    def __init__(self, router: ShardRouter):
        self.router = router

    def healthz(self) -> Response:
        health = self.router.healthz()
        return Response(
            200 if health["status"] == "ok" else 503, payload=health
        )

    def metrics(self) -> Response:
        return Response(
            200,
            text=self.router.metrics_text(),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    def metrics_json(self) -> Response:
        return Response(
            200,
            text=self.router.metrics_registry().to_json(),
            content_type="application/json",
        )

    def _passthrough(self, md5: str, path: str) -> Response:
        try:
            status, data = self.router.proxy(
                self.router.owner_of(md5), "GET", path, md5=md5
            )
        except ShardUnavailableError as exc:
            return Response(
                503,
                payload=error_body("shard_unavailable", str(exc), md5),
                headers=retry_after_headers(503),
            )
        # Shard responses pass through as raw text, which drops the
        # shard's own headers — re-derive backoff guidance from the
        # status so a proxied 429/503 still tells clients when to retry.
        return Response(
            status, text=data.decode("utf-8"),
            content_type="application/json",
            headers=retry_after_headers(status),
        )

    def result(self, md5: str) -> Response:
        return self._passthrough(md5, f"/v1/result/{md5}")

    def explain(self, md5: str) -> Response:
        return self._passthrough(md5, f"/v1/explain/{md5}")

    def submit(self, body: bytes) -> Response:
        try:
            apk, _lane = parse_submission(body)
        except ValueError as exc:
            return Response(
                400, payload=error_body("bad_request", str(exc))
            )
        shard_id = self.router.owner_of(apk.md5)
        try:
            status, data = self.router.proxy(
                shard_id, "POST", "/v1/submit", body, md5=apk.md5
            )
        except ShardUnavailableError as exc:
            return Response(
                503,
                payload=error_body(
                    "shard_unavailable", str(exc), apk.md5
                ),
                headers=retry_after_headers(503),
            )
        return Response(
            status, text=data.decode("utf-8"),
            content_type="application/json",
            headers=retry_after_headers(status),
        )

    def ruleset_push(self, body: bytes) -> Response:
        """``POST /v1/admin/ruleset`` at the front door: roll to all shards."""
        try:
            receipt = self.router.push_ruleset(body)
        except ValueError as exc:
            return Response(
                400, payload=error_body("bad_request", str(exc))
            )
        except ShardUnavailableError as exc:
            return Response(
                503,
                payload=error_body("shard_unavailable", str(exc)),
                headers=retry_after_headers(503),
            )
        return Response(200, payload=receipt)


def make_router_server(
    router: ShardRouter,
    host: str = "127.0.0.1",
    port: int = 0,
) -> VettingHTTPServer:
    """Bind the router front door (same server class, RouterApi routes)."""
    return VettingHTTPServer((host, port), RouterApi(router))
