"""Versioned ruleset registry: persisted artifacts, atomic hot swap.

The serving tier explains verdicts with a behavior ruleset the same
way it scores them with a model: under a read lease on a versioned
registry.  This module gives rulesets the :class:`ModelRegistry`
treatment —

* every published ruleset is written to a versioned JSON artifact with
  a SHA-256 recorded in ``ruleset_manifest.json``; loads verify the
  hash, so a corrupted artifact can never be activated;
* the active ruleset is replaced atomically under the same
  writer-preference :class:`RWLock` discipline: every micro-batch
  explains under a read lease, so no submission is ever explained by a
  mix of two ruleset versions;
* the bundled starter ruleset is the implicit **version 0** — a fresh
  registry serves it until something better is pushed, and the serving
  tier needs no special empty-registry path.

Unlike models, rulesets are small and arrive over the wire
(``POST /v1/admin/ruleset``), so the registry also supports an
in-memory mode (``root=None``) for ephemeral workers.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from contextlib import contextmanager
from pathlib import Path

from repro.obs import MetricsRegistry
from repro.rules.builtin import builtin_ruleset
from repro.rules.spec import RuleSpec, load_ruleset
from repro.serve.registry import RWLock, IntegrityError

__all__ = ["RulesetRegistry", "RulesetVersion", "BUILTIN_RULESET_VERSION"]

#: Manifest schema marker for ``ruleset_manifest.json``.
RULESET_MANIFEST_VERSION = 1

#: The implicit version of the bundled starter ruleset.
BUILTIN_RULESET_VERSION = 0


def _canonical_bytes(source: bytes | str | list | tuple | dict) -> bytes:
    """Normalize any accepted publish source to artifact bytes.

    Raw bytes/str pass through verbatim (the pushed bytes are what is
    hashed, so a mined artifact keeps its content hash end to end);
    parsed forms are serialized canonically.
    """
    if isinstance(source, bytes):
        return source
    if isinstance(source, str):
        return source.encode("utf-8")
    if isinstance(source, dict):
        return (
            json.dumps(source, indent=2, sort_keys=True) + "\n"
        ).encode("utf-8")
    specs = list(source)
    payload = {"version": 1, "rules": []}
    for spec in specs:
        if isinstance(spec, RuleSpec):
            payload["rules"].append(spec.to_dict())
        else:
            payload["rules"].append(dict(spec))
    return (
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    ).encode("utf-8")


class RulesetVersion:
    """One published ruleset artifact (manifest record)."""

    __slots__ = ("version", "filename", "sha256", "state", "metadata",
                 "created", "n_rules")

    def __init__(
        self,
        version: int,
        filename: str,
        sha256: str,
        state: str = "archived",
        metadata: dict | None = None,
        created: float = 0.0,
        n_rules: int = 0,
    ):
        self.version = version
        self.filename = filename
        self.sha256 = sha256
        self.state = state
        self.metadata = dict(metadata or {})
        self.created = created
        self.n_rules = n_rules

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "filename": self.filename,
            "sha256": self.sha256,
            "state": self.state,
            "metadata": dict(self.metadata),
            "created": self.created,
            "n_rules": self.n_rules,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "RulesetVersion":
        return cls(
            version=int(record["version"]),
            filename=record["filename"],
            sha256=record["sha256"],
            state=record.get("state", "archived"),
            metadata=dict(record.get("metadata", {})),
            created=float(record.get("created", 0.0)),
            n_rules=int(record.get("n_rules", 0)),
        )


class RulesetRegistry:
    """Registry of behavior-ruleset artifacts with atomic activation.

    Args:
        root: directory holding artifacts and ``ruleset_manifest.json``
            (created on demand; reopening restores the manifest and the
            recorded active ruleset).  ``None`` keeps everything in
            memory — published artifacts live only as long as the
            process, which is exactly what a shard worker wants for
            rulesets pushed over the wire.
        metrics: metrics registry for ``ruleset_swap_total`` /
            version-gauge telemetry.
    """

    def __init__(
        self,
        root: str | Path | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.root = Path(root) if root is not None else None
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
            self._manifest_path = self.root / "ruleset_manifest.json"
        else:
            self._manifest_path = None
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._lock = RWLock()
        self._mutate = threading.Lock()
        self.versions: dict[int, RulesetVersion] = {}
        self._blobs: dict[int, bytes] = {}  # in-memory artifact store
        # Version 0 — the bundled set — is always active until a swap.
        self._active: tuple[int, tuple[RuleSpec, ...]] = (
            BUILTIN_RULESET_VERSION,
            builtin_ruleset(),
        )
        if self._manifest_path is not None and self._manifest_path.exists():
            self._restore()
        else:
            self._publish_gauges()

    # ------------------------------------------------------------------
    # Manifest persistence
    # ------------------------------------------------------------------

    def _save_manifest(self) -> None:
        if self._manifest_path is None:
            return
        payload = {
            "v": RULESET_MANIFEST_VERSION,
            "versions": [
                self.versions[v].to_dict() for v in sorted(self.versions)
            ],
        }
        tmp = self._manifest_path.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8"
        )
        tmp.replace(self._manifest_path)

    def _restore(self) -> None:
        payload = json.loads(self._manifest_path.read_text(encoding="utf-8"))
        if payload.get("v") != RULESET_MANIFEST_VERSION:
            raise ValueError(
                f"unsupported ruleset manifest version: {payload.get('v')!r}"
            )
        for record in payload.get("versions", []):
            rv = RulesetVersion.from_dict(record)
            self.versions[rv.version] = rv
        for rv in self.versions.values():
            if rv.state == "active":
                self._active = (rv.version, self.load(rv.version))
        self._publish_gauges()

    # ------------------------------------------------------------------
    # Artifact lifecycle
    # ------------------------------------------------------------------

    def publish(
        self,
        source: bytes | str | list | tuple | dict,
        metadata: dict | None = None,
        activate: bool = False,
    ) -> RulesetVersion:
        """Persist a ruleset as a new version.

        ``source`` is anything :func:`repro.rules.load_ruleset`
        accepts — raw JSON bytes/text, a parsed artifact dict, or a
        list of :class:`RuleSpec` / rule dicts.  It is parsed *before*
        anything is written, so an invalid ruleset never lands in the
        registry; the artifact is written to a temp file and renamed
        into place, mirroring :meth:`ModelRegistry.publish`.
        """
        blob = _canonical_bytes(source)
        specs = load_ruleset(json.loads(blob.decode("utf-8")))
        with self._mutate:
            version = max(self.versions, default=BUILTIN_RULESET_VERSION) + 1
            filename = f"ruleset_v{version:04d}.json"
            digest = hashlib.sha256(blob).hexdigest()
            if self.root is not None:
                tmp = self.root / (filename + ".tmp")
                tmp.write_bytes(blob)
                tmp.replace(self.root / filename)
            else:
                self._blobs[version] = blob
            rv = RulesetVersion(
                version=version,
                filename=filename,
                sha256=digest,
                state="archived",
                metadata=dict(metadata or {}),
                created=time.time(),
                n_rules=len(specs),
            )
            self.versions[version] = rv
            self._save_manifest()
            self.metrics.inc("serve_rulesets_published_total")
        if activate:
            self.activate(version)
        return rv

    def load(self, version: int) -> tuple[RuleSpec, ...]:
        """Parse one version, verifying its recorded hash.

        Version 0 always resolves to the bundled ruleset.
        """
        if version == BUILTIN_RULESET_VERSION:
            return builtin_ruleset()
        rv = self._version(version)
        if self.root is not None:
            blob = (self.root / rv.filename).read_bytes()
        else:
            blob = self._blobs[version]
        digest = hashlib.sha256(blob).hexdigest()
        if digest != rv.sha256:
            raise IntegrityError(
                f"ruleset v{version} artifact hash mismatch: "
                f"manifest {rv.sha256[:12]}…, file {digest[:12]}…"
            )
        return tuple(load_ruleset(json.loads(blob.decode("utf-8"))))

    def _version(self, version: int) -> RulesetVersion:
        try:
            return self.versions[version]
        except KeyError:
            raise KeyError(f"unknown ruleset version {version}") from None

    # ------------------------------------------------------------------
    # Hot swap
    # ------------------------------------------------------------------

    def activate(self, version: int) -> None:
        """Atomically make ``version`` the served ruleset.

        The artifact is parsed and hash-verified *before* the write
        lock is taken, so the critical section is a pointer exchange:
        in-flight read leases finish explaining under the old version,
        the swap happens, new leases see the new one.
        """
        specs = self.load(version)
        with self._mutate:
            with self._lock.write():
                previous = self._active
                self._active = (version, specs)
            if previous[0] in self.versions:
                prior = self.versions[previous[0]]
                if prior.state == "active":
                    prior.state = "archived"
            if version in self.versions:
                self.versions[version].state = "active"
            self._save_manifest()
            self.metrics.inc("ruleset_swap_total")
            self._publish_gauges()

    @property
    def active_version(self) -> int:
        with self._lock.read():
            return self._active[0]

    def active_specs(self) -> tuple[RuleSpec, ...]:
        with self._lock.read():
            return self._active[1]

    @contextmanager
    def lease(self):
        """Read lease over a consistent ``(version, specs)`` pair.

        Everything a caller evaluates under the lease sees one ruleset
        version; a concurrent :meth:`activate` waits for the lease to
        end.  Do not call manifest-mutating registry methods inside
        the lease (they take the mutate lock, inverting lock order
        with a waiting writer).
        """
        self._lock.acquire_read()
        try:
            yield self._active[0], self._active[1]
        finally:
            self._lock.release_read()

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------

    def _publish_gauges(self) -> None:
        self.metrics.set_gauge(
            "serve_active_ruleset_version", self._active[0]
        )
        self.metrics.set_gauge(
            "serve_rulesets_published", len(self.versions)
        )
