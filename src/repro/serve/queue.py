"""Durable submission queue: JSONL write-ahead log + priority lanes.

The online service must never lose an accepted submission (§6's
operational loop vets ~10K daily submissions within hours), so every
accepted APK is appended to a write-ahead log *before* the submitter is
acknowledged.  A service killed mid-batch replays the WAL on restart:
entries with a matching completion record land directly in the result
store (never re-scored), entries without one are re-enqueued — each
accepted submission reaches a terminal result exactly once.

Three priority lanes order the dispatch queue: triage-escalated apps
first, resubmissions/updates next, bulk traffic last (FIFO within a
lane).  Queue depth is bounded; submissions past the bound are rejected
with :class:`QueueFullError` — explicit backpressure, counted as
``serve_admission_rejects_total`` — rather than buffered without limit.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path

from repro.android.apk import Apk
from repro.obs import MetricsRegistry
from repro.serve.codec import apk_from_dict, apk_to_dict

__all__ = [
    "LANES",
    "LANE_ESCALATED",
    "LANE_RESUBMIT",
    "LANE_BULK",
    "QueueFullError",
    "WrongShardError",
    "SubmissionRecord",
    "SubmissionQueue",
    "shard_of",
]

#: Priority lanes, most urgent first.  Lower number = dispatched first.
LANE_ESCALATED = 0
LANE_RESUBMIT = 1
LANE_BULK = 2

LANES = {
    "escalated": LANE_ESCALATED,
    "resubmit": LANE_RESUBMIT,
    "bulk": LANE_BULK,
}

_LANE_NAMES = {v: k for k, v in LANES.items()}

#: WAL format marker.
WAL_FORMAT_VERSION = 1


class QueueFullError(RuntimeError):
    """Admission control rejected a submission (queue at max depth)."""


class WrongShardError(RuntimeError):
    """A submission was routed to a shard that does not own its md5.

    Raised by a shard-scoped service when ``shard_of(md5, n_shards)``
    disagrees with the shard's identity; the HTTP layer maps it to
    ``409 Conflict`` so a misconfigured router or direct-to-shard client
    fails loudly instead of splitting one md5's history across WALs.
    """

    def __init__(self, md5: str, owner: int, shard_id: int, n_shards: int):
        super().__init__(
            f"submission {md5} belongs to shard {owner}/{n_shards}, "
            f"not shard {shard_id}"
        )
        self.md5 = md5
        self.owner = owner
        self.shard_id = shard_id
        self.n_shards = n_shards


def shard_of(md5: str, n_shards: int) -> int:
    """The shard that owns one md5 (stable content-hash routing).

    The low 64 bits of the md5 taken modulo ``n_shards``: deterministic
    across processes and runs (no PYTHONHASHSEED dependence), uniform
    because md5 output is, and independent of submission order — the
    same APK always lands on the same shard, which is what keeps one
    md5's WAL history, coalescing, and observation cache shard-local.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    return int(md5[-16:], 16) % n_shards


def lane_name(lane: int) -> str:
    return _LANE_NAMES.get(lane, str(lane))


def parse_lane(value: int | str) -> int:
    """Accept a lane by number or by name."""
    if isinstance(value, str):
        try:
            return LANES[value]
        except KeyError:
            raise ValueError(
                f"unknown lane {value!r}; expected one of {sorted(LANES)}"
            ) from None
    lane = int(value)
    if lane not in _LANE_NAMES:
        raise ValueError(f"unknown lane {lane}; expected 0, 1, or 2")
    return lane


@dataclass
class SubmissionRecord:
    """One accepted submission moving through the queue.

    Attributes:
        seq: monotonically increasing acceptance sequence number (the
            WAL ordering key; ties in a lane dispatch FIFO by seq).
        md5: content hash of the submitted APK.
        lane: priority lane (see :data:`LANES`).
        apk: the submission itself.
        replayed: True when this record was recovered from the WAL
            rather than accepted live.
    """

    seq: int
    md5: str
    lane: int
    apk: Apk
    replayed: bool = field(default=False, compare=False)


class SubmissionQueue:
    """Bounded, durable, priority-ordered submission queue.

    Thread-safe.  All mutation goes through the WAL first: ``submit``
    appends an acceptance record before the entry becomes visible to
    consumers, ``mark_done`` appends a completion record carrying the
    terminal outcome.  Reopening a queue on the same spool directory
    replays the log (see :attr:`completed` for recovered outcomes).

    Args:
        spool_dir: directory holding ``queue.wal``; created on demand.
            ``None`` keeps the queue purely in memory (tests, benches
            that measure dispatch overhead without fsync noise).
        max_depth: admission bound on pending entries; 0 disables the
            bound.
        registry: metrics registry for queue telemetry.
        fsync: force an ``os.fsync`` after every WAL append (durability
            against power loss, not just process crash).  Defaults to
            False: flush-on-write survives a killed process, which is
            the failure mode the replay tests exercise.
    """

    def __init__(
        self,
        spool_dir: str | Path | None = None,
        max_depth: int = 10_000,
        registry: MetricsRegistry | None = None,
        fsync: bool = False,
    ):
        if max_depth < 0:
            raise ValueError("max_depth must be non-negative")
        self.spool_dir = Path(spool_dir) if spool_dir is not None else None
        self.max_depth = max_depth
        self.registry = registry if registry is not None else MetricsRegistry()
        self.fsync = fsync
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._lanes: dict[int, list[SubmissionRecord]] = {
            lane: [] for lane in sorted(_LANE_NAMES)
        }
        #: md5 -> live record, for idempotent resubmission while pending
        #: or in flight.
        self._pending: dict[str, SubmissionRecord] = {}
        #: seq of records handed to a consumer but not yet marked done.
        self._inflight: dict[int, SubmissionRecord] = {}
        #: md5 -> terminal outcome dict (from live completion or replay).
        self.completed: dict[str, dict] = {}
        self._seq = 0
        self._closed = False
        self._wal_path: Path | None = None
        self._wal = None
        if self.spool_dir is not None:
            self.spool_dir.mkdir(parents=True, exist_ok=True)
            self._wal_path = self.spool_dir / "queue.wal"
            if self._wal_path.exists():
                self._replay()
            self._wal = self._wal_path.open("a", encoding="utf-8")

    # ------------------------------------------------------------------
    # WAL
    # ------------------------------------------------------------------

    def _append(self, record: dict) -> None:
        if self._wal is None:
            return
        self._wal.write(json.dumps(record, sort_keys=True))
        self._wal.write("\n")
        self._wal.flush()
        if self.fsync:
            os.fsync(self._wal.fileno())

    def _replay(self) -> None:
        """Rebuild queue state from the WAL (crash recovery)."""
        accepted: dict[int, SubmissionRecord] = {}
        with self._wal_path.open("r", encoding="utf-8") as fh:
            for line_no, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ValueError(
                        f"{self._wal_path}:{line_no}: malformed WAL line"
                    ) from exc
                kind = record.get("type")
                if kind == "submit":
                    if record.get("v") != WAL_FORMAT_VERSION:
                        raise ValueError(
                            f"{self._wal_path}:{line_no}: unsupported WAL "
                            f"version {record.get('v')!r}"
                        )
                    seq = int(record["seq"])
                    accepted[seq] = SubmissionRecord(
                        seq=seq,
                        md5=record["md5"],
                        lane=parse_lane(record["lane"]),
                        apk=apk_from_dict(record["apk"]),
                        replayed=True,
                    )
                    self._seq = max(self._seq, seq)
                elif kind == "done":
                    seq = int(record["seq"])
                    entry = accepted.pop(seq, None)
                    md5 = record.get("md5") or (
                        entry.md5 if entry is not None else None
                    )
                    if md5 is not None:
                        self.completed[md5] = record.get("outcome", {})
                else:
                    raise ValueError(
                        f"{self._wal_path}:{line_no}: unknown WAL record "
                        f"type {kind!r}"
                    )
        replayed = 0
        for seq in sorted(accepted):
            entry = accepted[seq]
            if entry.md5 in self.completed:
                # A duplicate submission whose md5 already reached a
                # terminal outcome: done, nothing to re-score.
                continue
            if entry.md5 in self._pending:
                continue  # coalesce duplicate pending submissions
            self._lanes[entry.lane].append(entry)
            self._pending[entry.md5] = entry
            replayed += 1
        if replayed:
            self.registry.inc("serve_wal_replayed_total", replayed)
        self._update_depth_gauge()

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------

    def submit(self, apk: Apk, lane: int | str = LANE_BULK) -> SubmissionRecord:
        """Accept one submission (durable once this returns).

        Resubmitting an md5 that is already pending or in flight is
        idempotent and returns the existing record.  An md5 that already
        reached a terminal outcome is *not* deduplicated — markets see
        deliberate resubmissions of previously vetted content and those
        are served from the observation cache downstream.

        Raises:
            QueueFullError: the queue is at ``max_depth``.
        """
        lane = parse_lane(lane)
        with self._lock:
            if self._closed:
                raise RuntimeError("queue is closed")
            existing = self._pending.get(apk.md5)
            if existing is not None:
                self.registry.inc("serve_submissions_coalesced_total")
                return existing
            if self.max_depth and self.depth_locked() >= self.max_depth:
                self.registry.inc("serve_admission_rejects_total")
                raise QueueFullError(
                    f"queue at max depth {self.max_depth}; retry later"
                )
            self._seq += 1
            entry = SubmissionRecord(
                seq=self._seq, md5=apk.md5, lane=lane, apk=apk
            )
            self._append(
                {
                    "type": "submit",
                    "v": WAL_FORMAT_VERSION,
                    "seq": entry.seq,
                    "md5": entry.md5,
                    "lane": entry.lane,
                    "apk": apk_to_dict(apk),
                }
            )
            self._lanes[lane].append(entry)
            self._pending[apk.md5] = entry
            self.registry.inc(
                "serve_submissions_total", lane=lane_name(lane)
            )
            self._update_depth_gauge()
            self._not_empty.notify()
            return entry

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------

    def take(self, timeout: float | None = None) -> SubmissionRecord | None:
        """Pop the highest-priority pending entry (None on timeout).

        The entry stays in the pending (md5-coalescing) set and moves to
        the in-flight set until :meth:`mark_done`; a crash between the
        two leaves its acceptance record uncompleted in the WAL, so a
        restart re-enqueues it.
        """
        with self._not_empty:
            if not self._wait_for_entry(timeout):
                return None
            for lane in sorted(self._lanes):
                if self._lanes[lane]:
                    entry = self._lanes[lane].pop(0)
                    self._inflight[entry.seq] = entry
                    self._update_depth_gauge()
                    return entry
            return None  # pragma: no cover - guarded by _wait_for_entry

    def take_batch(
        self, max_entries: int, timeout: float | None = None
    ) -> list[SubmissionRecord]:
        """Pop up to ``max_entries`` (blocking only for the first)."""
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        first = self.take(timeout)
        if first is None:
            return []
        batch = [first]
        while len(batch) < max_entries:
            entry = self.take(timeout=0)
            if entry is None:
                break
            batch.append(entry)
        return batch

    def _wait_for_entry(self, timeout: float | None) -> bool:
        def has_entry() -> bool:
            return self._closed or any(
                self._lanes[lane] for lane in self._lanes
            )

        if not has_entry():
            self._not_empty.wait_for(has_entry, timeout)
        return any(self._lanes[lane] for lane in self._lanes)

    def mark_done(self, entry: SubmissionRecord, outcome: dict) -> None:
        """Record a terminal outcome for an in-flight entry (durable)."""
        with self._lock:
            self._append(
                {
                    "type": "done",
                    "seq": entry.seq,
                    "md5": entry.md5,
                    "outcome": outcome,
                }
            )
            self._inflight.pop(entry.seq, None)
            live = self._pending.get(entry.md5)
            if live is not None and live.seq == entry.seq:
                del self._pending[entry.md5]
            self.completed[entry.md5] = outcome
            self.registry.inc("serve_completed_total")
            self._update_depth_gauge()

    def requeue(self, entry: SubmissionRecord) -> None:
        """Put an in-flight entry back at the head of its lane.

        Used on graceful shutdown mid-batch; no WAL record is needed
        (the acceptance record is still uncompleted).
        """
        with self._lock:
            self._inflight.pop(entry.seq, None)
            self._lanes[entry.lane].insert(0, entry)
            self._update_depth_gauge()
            self._not_empty.notify()

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------

    def depth_locked(self) -> int:
        """Pending + in-flight count (callers must hold the lock)."""
        return (
            sum(len(entries) for entries in self._lanes.values())
            + len(self._inflight)
        )

    @property
    def depth(self) -> int:
        """Entries accepted but not yet terminal (pending + in flight)."""
        with self._lock:
            return self.depth_locked()

    @property
    def pending(self) -> int:
        """Entries waiting for a consumer (excludes in-flight)."""
        with self._lock:
            return sum(len(entries) for entries in self._lanes.values())

    @property
    def inflight(self) -> int:
        with self._lock:
            return len(self._inflight)

    def pending_md5s(self) -> frozenset[str]:
        """md5s accepted but not yet terminal (pending + in flight).

        A shutdown snapshot: everything in this set still has an
        uncompleted acceptance record in the WAL and will be replayed
        by the next open on the same spool.
        """
        with self._lock:
            md5s = set(self._pending)
            md5s.update(e.md5 for e in self._inflight.values())
            return frozenset(md5s)

    def status(self, md5: str) -> str:
        """``pending`` / ``in_flight`` / ``done`` / ``unknown``."""
        with self._lock:
            if md5 in self.completed:
                return "done"
            entry = self._pending.get(md5)
            if entry is None:
                return "unknown"
            if entry.seq in self._inflight:
                return "in_flight"
            return "pending"

    def _update_depth_gauge(self) -> None:
        # The unlabelled series is the total (pending + in flight); the
        # lane-labelled series expose per-lane *pending* backlogs so
        # dashboards can show escalated-lane headroom during a bulk
        # flood (in-flight entries have left their lane already).
        self.registry.set_gauge("serve_queue_depth", self.depth_locked())
        for lane, entries in self._lanes.items():
            self.registry.set_gauge(
                "serve_queue_depth", len(entries), lane=lane_name(lane)
            )

    def close(self) -> None:
        """Stop accepting, wake blocked consumers, close the WAL."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            if self._wal is not None:
                self._wal.close()
                self._wal = None

    def __enter__(self) -> "SubmissionQueue":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
