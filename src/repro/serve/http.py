"""HTTP JSON API over :class:`~repro.serve.service.OnlineVettingService`.

Stdlib-only (``http.server.ThreadingHTTPServer``) so the serving layer
adds no dependencies.  Endpoints:

* ``POST /submit`` — body ``{"apk": {...}, "lane": "bulk"}`` (or a bare
  APK wire dict).  ``202`` with an acceptance ticket; ``429`` when
  admission control rejects (queue full); ``400`` on malformed payloads.
* ``GET /result/<md5>`` — ``200`` with the terminal outcome, ``202``
  with ``{"status": "pending"|"in_flight"}`` while queued, ``404`` for
  an unknown md5.
* ``GET /explain/<md5>`` — ``200`` with the behavior-rule evidence for
  a terminal submission (``explanation`` is ``null`` for clean ones),
  ``202`` while queued, ``404`` for an unknown md5.
* ``GET /healthz`` — liveness + active model version + queue depth.

Every error (including 404s) carries a JSON body with an ``error`` key.
* ``GET /metrics`` — Prometheus text exposition of the unified
  :class:`~repro.obs.MetricsRegistry` (engine, pipeline, queue, model
  registry, and service counters in one scrape).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.serve.codec import apk_from_dict
from repro.serve.queue import LANES, QueueFullError
from repro.serve.service import OnlineVettingService

__all__ = ["VettingHTTPServer", "make_server"]

#: Submission payloads above this are rejected before parsing (DoS guard).
MAX_BODY_BYTES = 4 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    """One request; the service instance hangs off the server object."""

    server: "VettingHTTPServer"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt, *args):  # noqa: D102 - silence stderr
        pass

    def _send_state(self, payload: dict, md5: str) -> None:
        """Map a submission-state payload onto 200/202/404."""
        state = payload.get("status")
        if state in ("done", "failed"):
            self._send_json(200, payload)
        elif state in ("pending", "in_flight"):
            self._send_json(202, payload)
        else:
            self._send_json(
                404, {**payload, "error": f"unknown submission: {md5}"}
            )

    # -- routes --------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        service = self.server.service
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            health = service.healthz()
            status = 200 if health["status"] == "ok" else 503
            self._send_json(status, health)
        elif path == "/metrics":
            self._send_text(
                200,
                service.metrics_text(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        elif path.startswith("/result/"):
            md5 = path[len("/result/"):]
            self._send_state(service.result(md5), md5)
        elif path.startswith("/explain/"):
            md5 = path[len("/explain/"):]
            self._send_state(service.explain(md5), md5)
        else:
            self._send_json(404, {"error": f"no such endpoint: {path}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        service = self.server.service
        path = self.path.split("?", 1)[0].rstrip("/")
        if path != "/submit":
            self._send_json(404, {"error": f"no such endpoint: {path}"})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = -1
        if length <= 0 or length > MAX_BODY_BYTES:
            self._send_json(
                400, {"error": "missing or oversized request body"}
            )
            return
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
            if not isinstance(payload, dict):
                raise ValueError("payload must be a JSON object")
            apk_dict = payload.get("apk", payload)
            lane = payload.get("lane", "bulk")
            if isinstance(lane, str) and lane not in LANES:
                raise ValueError(
                    f"unknown lane {lane!r}; expected one of {sorted(LANES)}"
                )
            apk = apk_from_dict(apk_dict)
        except (ValueError, KeyError, TypeError) as exc:
            self._send_json(400, {"error": f"bad submission: {exc}"})
            return
        try:
            ticket = service.submit(apk, lane)
        except QueueFullError as exc:
            self._send_json(429, {"error": str(exc)})
            return
        self._send_json(202, ticket)


class VettingHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying its service; one thread per request."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: OnlineVettingService):
        super().__init__(address, _Handler)
        self.service = service
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        return self.server_address[1]

    def start_background(self) -> "VettingHTTPServer":
        """Serve forever on a daemon thread (idempotent)."""
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self.serve_forever,
                name="serve-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self.shutdown()
        if self._thread is not None:
            self._thread.join(5.0)
            self._thread = None
        self.server_close()


def make_server(
    service: OnlineVettingService,
    host: str = "127.0.0.1",
    port: int = 0,
) -> VettingHTTPServer:
    """Bind the API (port 0 picks a free port; see ``server.port``)."""
    return VettingHTTPServer((host, port), service)
