"""Versioned HTTP JSON API over the online vetting service.

Stdlib-only (``http.server.ThreadingHTTPServer``) so the serving layer
adds no dependencies.  All routes live under the ``/v1`` prefix in one
declarative route table (:data:`ROUTES`) — method, path pattern,
handler name — dispatched against an *API object* (:class:`ServiceApi`
for a single service or shard worker,
:class:`~repro.serve.shard.RouterApi` for the shard router front door),
so the wire contract is defined exactly once and every server speaks
it:

* ``POST /v1/submit`` — body ``{"apk": {...}, "lane": "bulk"}`` (or a
  bare APK wire dict).  ``202`` with an acceptance ticket; ``429`` when
  admission control rejects (queue full); ``409`` when a shard-scoped
  service does not own the md5; ``400`` on malformed payloads.
* ``GET /v1/result/<md5>`` — ``200`` with the terminal outcome,
  ``202`` with ``{"status": "pending"|"in_flight"}`` while queued,
  ``404`` for an unknown md5.
* ``GET /v1/explain/<md5>`` — ``200`` with the behavior-rule evidence
  for a terminal submission (``explanation`` is ``null`` for clean
  ones), ``202`` while queued, ``404`` for an unknown md5.
* ``GET /v1/healthz`` — liveness + active model version + queue depth
  (``503`` when not serving).
* ``GET /v1/metrics`` — Prometheus text exposition of the unified
  :class:`~repro.obs.MetricsRegistry`.
* ``GET /v1/metrics.json`` — the same registry as a JSON snapshot
  (what the shard router scrapes to build its aggregated exposition).
* ``POST /v1/admin/ruleset`` — body: a ruleset JSON document
  (hand-written or mined).  ``200`` with the new ``ruleset_version``
  once the swap is atomically live (the shard router rolls the push
  across every worker); ``400`` when parse/lint/compile validation
  rejects it; ``503`` when a shard cannot be reached.

**Error envelope.**  Every error body is one JSON shape, shared by the
router and every shard worker::

    {"error": {"code": "<one of ERROR_CODES>", "message": "...", "md5": "..."?}}

**Namespace.**  ``/v1`` is the only namespace: the unprefixed PR 3
paths (``/submit``, ``/result/<md5>``, …) had a one-release redirect
grace window, which has passed — they are plain 404s now.
"""

from __future__ import annotations

import json
import re
import threading
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.serve.codec import apk_from_dict
from repro.serve.queue import LANES, QueueFullError, WrongShardError
from repro.serve.service import OnlineVettingService

__all__ = [
    "API_PREFIX",
    "ERROR_CODES",
    "RETRY_AFTER_QUEUE_FULL",
    "RETRY_AFTER_SHARD_UNAVAILABLE",
    "ROUTES",
    "Response",
    "Route",
    "ServiceApi",
    "VettingHTTPServer",
    "error_body",
    "make_server",
    "retry_after_headers",
]

#: Version prefix of the current wire contract.
API_PREFIX = "/v1"

#: Submission payloads above this are rejected before parsing (DoS guard).
MAX_BODY_BYTES = 4 * 1024 * 1024

#: The closed set of machine-readable error codes in the envelope —
#: part of the public wire contract (locked by ``test_public_api.py``).
ERROR_CODES = frozenset(
    {
        "bad_request",        # 400: malformed body, unknown lane, bad codec
        "not_found",          # 404: unknown endpoint or md5
        "wrong_shard",        # 409: md5 owned by a different shard
        "queue_full",         # 429: admission control (retry later)
        "shard_unavailable",  # 503: owning shard down/unreachable
    }
)


#: Backoff guidance (seconds) carried on throttling/outage responses.
#: 429 ``queue_full`` clears within a micro-batch or two; a 503
#: ``shard_unavailable`` usually means a worker restart is in progress,
#: so clients should back off a little longer.
RETRY_AFTER_QUEUE_FULL = "1"
RETRY_AFTER_SHARD_UNAVAILABLE = "2"


def retry_after_headers(status: int) -> tuple[tuple[str, str], ...]:
    """The ``Retry-After`` header for a retryable status (else empty)."""
    if status == 429:
        return (("Retry-After", RETRY_AFTER_QUEUE_FULL),)
    if status == 503:
        return (("Retry-After", RETRY_AFTER_SHARD_UNAVAILABLE),)
    return ()


def error_body(code: str, message: str, md5: str | None = None) -> dict:
    """The one JSON error envelope every server in the tier speaks."""
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code: {code!r}")
    err: dict = {"code": code, "message": message}
    if md5 is not None:
        err["md5"] = md5
    return {"error": err}


@dataclass(frozen=True)
class Response:
    """One HTTP response an API handler returns to the dispatcher.

    ``payload`` (a dict) is serialized as JSON; ``text`` bodies carry
    ``content_type`` verbatim (the Prometheus exposition).  ``headers``
    are extra response headers (e.g. ``Retry-After`` backoff guidance).
    """

    status: int
    payload: dict | None = None
    text: str | None = None
    content_type: str = "application/json"
    headers: tuple[tuple[str, str], ...] = ()


@dataclass(frozen=True)
class Route:
    """One row of the route table: method + path pattern + handler name."""

    method: str
    pattern: re.Pattern = field(repr=False)
    handler: str

    @property
    def path(self) -> str:
        return self.pattern.pattern


def _route(method: str, pattern: str, handler: str) -> Route:
    return Route(method, re.compile(pattern), handler)

_MD5 = r"(?P<md5>[0-9a-fA-F]{4,64})"

#: The single route table: every ``/v1`` endpoint, declaratively.
#: Handlers are method names resolved on the server's API object;
#: named groups in the pattern become handler keyword arguments, and
#: POST handlers additionally receive the raw request ``body``.
ROUTES: tuple[Route, ...] = (
    _route("GET", r"^/v1/healthz$", "healthz"),
    _route("GET", r"^/v1/metrics$", "metrics"),
    _route("GET", r"^/v1/metrics\.json$", "metrics_json"),
    _route("GET", rf"^/v1/result/{_MD5}$", "result"),
    _route("GET", rf"^/v1/explain/{_MD5}$", "explain"),
    _route("POST", r"^/v1/submit$", "submit"),
    _route("POST", r"^/v1/admin/ruleset$", "ruleset_push"),
)


class ServiceApi:
    """Route handlers over one :class:`OnlineVettingService`.

    Used directly by a single-process deployment and by every shard
    worker (whose service carries a shard identity, surfacing 409s for
    misrouted md5s).
    """

    def __init__(self, service: OnlineVettingService):
        self.service = service

    # -- reads ---------------------------------------------------------

    def healthz(self) -> Response:
        health = self.service.healthz()
        status = 200 if health["status"] == "ok" else 503
        return Response(status, payload=health)

    def metrics(self) -> Response:
        return Response(
            200,
            text=self.service.metrics_text(),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    def metrics_json(self) -> Response:
        return Response(
            200, text=self.service.metrics.to_json(), content_type="application/json"
        )

    def result(self, md5: str) -> Response:
        return _state_response(self.service.result(md5), md5)

    def explain(self, md5: str) -> Response:
        return _state_response(self.service.explain(md5), md5)

    # -- writes --------------------------------------------------------

    def submit(self, body: bytes) -> Response:
        try:
            apk, lane = parse_submission(body)
        except ValueError as exc:
            return Response(
                400, payload=error_body("bad_request", str(exc))
            )
        try:
            ticket = self.service.submit(apk, lane)
        except QueueFullError as exc:
            return Response(
                429,
                payload=error_body("queue_full", str(exc), apk.md5),
                headers=retry_after_headers(429),
            )
        except WrongShardError as exc:
            return Response(
                409, payload=error_body("wrong_shard", str(exc), exc.md5)
            )
        return Response(202, payload=ticket)

    def ruleset_push(self, body: bytes) -> Response:
        """``POST /v1/admin/ruleset``: validate + hot-swap a ruleset.

        Body is a ruleset JSON document (hand-written or a mined
        artifact).  ``200`` with ``{ruleset_version, n_rules, sha256}``
        once the swap is live; ``400`` when parsing, linting, or
        compilation against the active model rejects it.
        """
        try:
            receipt = self.service.push_ruleset(body)
        except ValueError as exc:
            return Response(
                400, payload=error_body("bad_request", str(exc))
            )
        return Response(200, payload=receipt)


def parse_submission(body: bytes):
    """Decode one ``POST /v1/submit`` body into ``(apk, lane)``.

    Shared by the service API and the shard router (which validates
    before proxying so malformed submissions never cross the wire
    twice).  Raises ``ValueError`` on any malformed payload.
    """
    try:
        payload = json.loads(body)
    except json.JSONDecodeError as exc:
        raise ValueError(f"bad submission: {exc}") from exc
    if not isinstance(payload, dict):
        raise ValueError("bad submission: payload must be a JSON object")
    apk_dict = payload.get("apk", payload)
    lane = payload.get("lane", "bulk")
    if isinstance(lane, str) and lane not in LANES:
        raise ValueError(
            f"bad submission: unknown lane {lane!r}; "
            f"expected one of {sorted(LANES)}"
        )
    try:
        apk = apk_from_dict(apk_dict)
    except (ValueError, KeyError, TypeError) as exc:
        raise ValueError(f"bad submission: {exc}") from exc
    return apk, lane


def _state_response(payload: dict, md5: str) -> Response:
    """Map a submission-state payload onto 200/202/404."""
    state = payload.get("status")
    if state in ("done", "failed"):
        return Response(200, payload=payload)
    if state in ("pending", "in_flight"):
        return Response(202, payload=payload)
    return Response(
        404,
        payload={
            **payload,
            **error_body("not_found", f"unknown submission: {md5}", md5),
        },
    )


class _Handler(BaseHTTPRequestHandler):
    """Table-driven dispatch; the API object hangs off the server."""

    server: "VettingHTTPServer"
    protocol_version = "HTTP/1.1"

    def log_message(self, fmt, *args):  # noqa: D102 - silence stderr
        pass

    def _send(self, response: Response) -> None:
        if response.text is not None:
            body = response.text.encode("utf-8")
            content_type = response.content_type
        else:
            body = json.dumps(response.payload).encode("utf-8")
            content_type = "application/json"
        self.send_response(response.status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in response.headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> bytes | None:
        """The request body, or None (response already sent) on abuse."""
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = -1
        if length <= 0 or length > MAX_BODY_BYTES:
            self._send(
                Response(
                    400,
                    payload=error_body(
                        "bad_request", "missing or oversized request body"
                    ),
                )
            )
            return None
        return self.rfile.read(length)

    def _dispatch(self, method: str) -> None:
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        for route in self.server.routes:
            if route.method != method:
                continue
            match = route.pattern.match(path)
            if match is None:
                continue
            kwargs = match.groupdict()
            if method == "POST":
                body = self._read_body()
                if body is None:
                    return
                kwargs["body"] = body
            self._send(getattr(self.server.api, route.handler)(**kwargs))
            return
        # Unprefixed paths had a one-release redirect grace window
        # after the /v1 namespace landed; the window has passed and
        # they are plain 404s now.
        self._send(
            Response(
                404,
                payload=error_body(
                    "not_found", f"no such endpoint: {method} {path}"
                ),
            )
        )

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")


class VettingHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying its API object; thread per request.

    ``api`` is any object implementing the handler names in ``routes``
    (default: the :data:`ROUTES` table) — a :class:`ServiceApi` here, a
    :class:`~repro.serve.shard.RouterApi` for the shard front door.
    """

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        api,
        routes: tuple[Route, ...] = ROUTES,
    ):
        super().__init__(address, _Handler)
        self.api = api
        self.routes = routes
        # Back-compat: the wrapped service, when the API has one.
        self.service = getattr(api, "service", None)
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        return self.server_address[1]

    def start_background(self) -> "VettingHTTPServer":
        """Serve forever on a daemon thread (idempotent)."""
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self.serve_forever,
                name="serve-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self.shutdown()
        if self._thread is not None:
            self._thread.join(5.0)
            self._thread = None
        self.server_close()


def make_server(
    service: OnlineVettingService,
    host: str = "127.0.0.1",
    port: int = 0,
) -> VettingHTTPServer:
    """Bind the API (port 0 picks a free port; see ``server.port``)."""
    return VettingHTTPServer((host, port), ServiceApi(service))
