"""JSON wire codec for submitted APKs.

The online service receives submissions over HTTP and must persist
accepted ones to a write-ahead log before acknowledging them, so the
full :class:`~repro.android.apk.Apk` model — manifest, dex, identity
metadata — needs a loss-free JSON representation.  Round-tripping is
exact: :func:`apk_from_dict` rebuilds an APK whose content MD5 equals
the original's, which is what lets WAL replay and resubmission dedup
key everything on ``md5``.
"""

from __future__ import annotations

from repro.android.apk import Apk
from repro.android.components import Activity, BroadcastReceiver, Service
from repro.android.dex import (
    ApiCallSite,
    DexCode,
    EmulatorProbe,
    NativeIsa,
    NativeLib,
)
from repro.android.manifest import AndroidManifest

__all__ = ["apk_to_dict", "apk_from_dict", "CODEC_VERSION"]

#: Wire format marker; bump on any incompatible schema change.
CODEC_VERSION = 1


def apk_to_dict(apk: Apk) -> dict:
    """Serialize one APK to a JSON-ready dict (exact round-trip)."""
    m = apk.manifest
    d = apk.dex
    return {
        "v": CODEC_VERSION,
        "md5": apk.md5,
        "manifest": {
            "package_name": m.package_name,
            "version_code": m.version_code,
            "requested_permissions": list(m.requested_permissions),
            "activities": [
                {
                    "name": a.name,
                    "referenced": a.referenced,
                    "exported": a.exported,
                    "reach_weight": a.reach_weight,
                }
                for a in m.activities
            ],
            "services": [
                {
                    "name": s.name,
                    "exported": s.exported,
                    "foreground": s.foreground,
                }
                for s in m.services
            ],
            "receivers": [
                {
                    "name": r.name,
                    "intent_filters": list(r.intent_filters),
                    "exported": r.exported,
                }
                for r in m.receivers
            ],
            "min_sdk_level": m.min_sdk_level,
        },
        "dex": {
            "call_sites": [
                {
                    "api_id": s.api_id,
                    "rate_multiplier": s.rate_multiplier,
                    "reach_quantile": s.reach_quantile,
                }
                for s in d.call_sites
            ],
            "reflection_api_ids": list(d.reflection_api_ids),
            "sent_intents": list(d.sent_intents),
            "native_libs": [
                {
                    "name": lib.name,
                    "isa": lib.isa.value,
                    "size_mb": lib.size_mb,
                    "houdini_compatible": lib.houdini_compatible,
                }
                for lib in d.native_libs
            ],
            "emulator_probes": [p.value for p in d.emulator_probes],
            "uses_dynamic_loading": d.uses_dynamic_loading,
            "obfuscated": d.obfuscated,
            "needs_live_sensors": d.needs_live_sensors,
        },
        "is_malicious": apk.is_malicious,
        "family": apk.family,
        "size_mb": apk.size_mb,
        "submitted_day": apk.submitted_day,
        "parent_md5": apk.parent_md5,
    }


def apk_from_dict(record: dict) -> Apk:
    """Rebuild an APK from its wire dict.

    Raises:
        ValueError: unsupported codec version, or the rebuilt content
            hash does not match the recorded ``md5`` (corrupt payload).
    """
    version = record.get("v")
    if version != CODEC_VERSION:
        raise ValueError(f"unsupported apk codec version: {version!r}")
    m = record["manifest"]
    d = record["dex"]
    manifest = AndroidManifest(
        package_name=m["package_name"],
        version_code=int(m["version_code"]),
        requested_permissions=tuple(m["requested_permissions"]),
        activities=tuple(
            Activity(
                name=a["name"],
                referenced=bool(a["referenced"]),
                exported=bool(a["exported"]),
                reach_weight=float(a["reach_weight"]),
            )
            for a in m["activities"]
        ),
        services=tuple(
            Service(
                name=s["name"],
                exported=bool(s["exported"]),
                foreground=bool(s["foreground"]),
            )
            for s in m["services"]
        ),
        receivers=tuple(
            BroadcastReceiver(
                name=r["name"],
                intent_filters=tuple(r["intent_filters"]),
                exported=bool(r["exported"]),
            )
            for r in m["receivers"]
        ),
        min_sdk_level=int(m["min_sdk_level"]),
    )
    dex = DexCode(
        call_sites=tuple(
            ApiCallSite(
                api_id=int(s["api_id"]),
                rate_multiplier=float(s["rate_multiplier"]),
                reach_quantile=float(s["reach_quantile"]),
            )
            for s in d["call_sites"]
        ),
        reflection_api_ids=tuple(int(i) for i in d["reflection_api_ids"]),
        sent_intents=tuple(d["sent_intents"]),
        native_libs=tuple(
            NativeLib(
                name=lib["name"],
                isa=NativeIsa(lib["isa"]),
                size_mb=float(lib["size_mb"]),
                houdini_compatible=bool(lib["houdini_compatible"]),
            )
            for lib in d["native_libs"]
        ),
        emulator_probes=tuple(
            EmulatorProbe(p) for p in d["emulator_probes"]
        ),
        uses_dynamic_loading=bool(d["uses_dynamic_loading"]),
        obfuscated=bool(d["obfuscated"]),
        needs_live_sensors=bool(d["needs_live_sensors"]),
    )
    apk = Apk(
        manifest=manifest,
        dex=dex,
        is_malicious=bool(record["is_malicious"]),
        family=record["family"],
        size_mb=float(record["size_mb"]),
        submitted_day=int(record["submitted_day"]),
        parent_md5=record.get("parent_md5"),
    )
    recorded = record.get("md5")
    if recorded and apk.md5 != recorded:
        raise ValueError(
            f"apk payload corrupt: content hash {apk.md5} != "
            f"recorded {recorded}"
        )
    return apk
