"""The online vetting service: queue in, verdicts out, models hot-swapped.

:class:`OnlineVettingService` is the deployed shape of APICHECKER (§6):
submissions arrive continuously (HTTP or direct calls), are made
durable by the :class:`~repro.serve.queue.SubmissionQueue` WAL, and a
dispatcher thread drains them in priority order through the existing
:class:`~repro.core.pipeline.VettingPipeline` (crash requeue, fallback
chain, observation cache) in micro-batches.  Each batch is analyzed and
scored under a single model-registry read lease, so a concurrent model
promotion can never hand one request a mixed-version answer.  Terminal
outcomes are WAL-recorded, which is what makes kill-and-restart
loss-free and exactly-once.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

import json

from repro.android.apk import Apk
from repro.core.pipeline import ObservationCache, VettingPipeline
from repro.emulator.cluster import ServerCluster
from repro.obs import MetricsRegistry, SpanSink
from repro.rules import RuleCompileError, RuleEvaluator, lint_ruleset, load_ruleset
from repro.serve.queue import (
    QueueFullError,
    SubmissionQueue,
    SubmissionRecord,
    WrongShardError,
    lane_name,
    shard_of,
)
from repro.serve.registry import ModelRegistry
from repro.serve.rulesets import RulesetRegistry

__all__ = ["DrainStatus", "OnlineVettingService"]

#: End-to-end latency buckets (accept -> terminal outcome, seconds).
E2E_BUCKETS = (0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0)


class DrainStatus:
    """Outcome of :meth:`OnlineVettingService.drain`.

    Truthy exactly when the queue fully drained (so existing
    ``assert service.drain(...)`` call sites keep their meaning);
    :attr:`pending` names the md5s that had not reached a terminal
    outcome when the wait ended, so a caller that timed out knows
    precisely which submissions to log or requeue.
    """

    __slots__ = ("drained", "pending")

    def __init__(self, drained: bool, pending: frozenset[str]):
        self.drained = drained
        self.pending = pending

    def __bool__(self) -> bool:
        return self.drained

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DrainStatus(drained={self.drained}, "
            f"pending={len(self.pending)} md5s)"
        )


class OnlineVettingService:
    """Durable online vetting over a hot-swappable model registry.

    Args:
        models: the model registry; must have (or be given) an active
            version before :meth:`start`.
        queue: the durable submission queue; built over ``spool_dir``
            when not supplied.
        spool_dir: where the queue WAL lives (used only when ``queue``
            is None); ``None`` runs non-durably in memory.
        workers: pipeline worker-pool size per micro-batch.
        batch_size: max submissions drained per dispatch cycle.  Small
            batches keep the accept-to-verdict latency low; large ones
            amortize pool spin-up.
        max_depth: admission bound for a queue built here.
        cache: md5-keyed observation cache shared across batches
            (``True`` for a fresh in-memory one, a path for a persistent
            one, ``None`` to disable).
        metrics: unified metrics registry (shared with the queue and
            model registry unless those were built with their own).
        sink: optional span sink.
        cluster: hardware model for the pipeline (default: the paper's
            single 16-slot server).
        poll_seconds: dispatcher wait per idle cycle.
        rules: behavioral rule evaluation for flagged submissions —
            ``True`` (default) compiles the active ruleset against
            each model version's key-API hook set (cached per
            model/ruleset version pair), ``False`` disables it.
            Explanations are embedded in the WAL-recorded outcome, so
            they survive restart and are served by
            ``GET /explain/<md5>``.
        rulesets: the versioned ruleset registry the evaluator reads
            from — a :class:`RulesetRegistry`, a directory path for a
            persistent one, or ``None`` to build one automatically
            (under ``<spool_dir>/rulesets`` when the queue is durable,
            in memory otherwise).  ``POST /v1/admin/ruleset`` /
            :meth:`push_ruleset` hot-swap it atomically.
        shard: ``(shard_id, n_shards)`` when this service is one shard
            of a sharded tier; :meth:`submit` then rejects md5s owned
            by another shard with :class:`WrongShardError` (HTTP 409),
            keeping each md5's WAL history strictly shard-local.
            ``None`` (default) accepts everything.
        pace_seconds_per_minute: slot-occupancy pacing forwarded to the
            per-batch :class:`VettingPipeline` (see its docstring).
        pipeline_factory: injectable dispatch — a callable
            ``(engine) -> VettingPipeline`` used to build the pipeline
            for each micro-batch.  Default: a pipeline over this
            service's cluster/workers/cache/pace configuration.  The
            shard tier injects per-shard objects here so worker
            processes share no mutable state.
        drift_monitors: online drift detection over the live traffic —
            a :class:`~repro.drift.detectors.DriftMonitorBank`,
            ``True`` for the default bank (shadow agreement, labeled-lag
            rolling F1, PSI), or ``None``/``False`` (default) to
            disable.  The dispatcher feeds the shadow and PSI monitors
            per scored batch (the PSI reference baselines itself from
            the first scored traffic unless
            :meth:`DriftMonitorBank.set_psi_reference` was called);
            operators feed the rolling-F1 monitor by replaying market
            review labels through :meth:`record_feedback`.  Status is
            exported in :meth:`healthz` and the drift gauges/counters
            land in the metrics exposition.
    """

    def __init__(
        self,
        models: ModelRegistry,
        queue: SubmissionQueue | None = None,
        spool_dir: str | Path | None = None,
        workers: int = 4,
        batch_size: int = 8,
        max_depth: int = 10_000,
        cache: ObservationCache | str | Path | bool | None = True,
        metrics: MetricsRegistry | None = None,
        sink: SpanSink | None = None,
        cluster: ServerCluster | None = None,
        poll_seconds: float = 0.05,
        rules: bool = True,
        rulesets: RulesetRegistry | str | Path | None = None,
        shard: tuple[int, int] | None = None,
        pace_seconds_per_minute: float = 0.0,
        pipeline_factory=None,
        drift_monitors=None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if shard is not None:
            shard = (int(shard[0]), int(shard[1]))
            if not 0 <= shard[0] < shard[1]:
                raise ValueError(
                    f"shard id {shard[0]} out of range for "
                    f"{shard[1]} shard(s)"
                )
        self.shard = shard
        self.pace_seconds_per_minute = pace_seconds_per_minute
        self.pipeline_factory = (
            pipeline_factory
            if pipeline_factory is not None
            else self._default_pipeline
        )
        self.models = models
        self.metrics = metrics if metrics is not None else models.metrics
        self.queue = queue if queue is not None else SubmissionQueue(
            spool_dir=spool_dir,
            max_depth=max_depth,
            registry=self.metrics,
        )
        self.workers = workers
        self.batch_size = batch_size
        self.sink = sink
        self.cluster = cluster or ServerCluster(n_servers=1)
        self.poll_seconds = poll_seconds
        if cache is True:
            cache = ObservationCache()
        elif cache is False:
            cache = None
        elif isinstance(cache, (str, Path)):
            cache = ObservationCache(cache)
        self.cache = cache
        #: md5 -> terminal outcome dict; seeded with outcomes the queue
        #: recovered from its WAL so completed work is never re-scored.
        self.results: dict[str, dict] = dict(self.queue.completed)
        self.rules_enabled = bool(rules)
        if isinstance(rulesets, RulesetRegistry):
            self.rulesets = rulesets
        else:
            root = rulesets
            if root is None and spool_dir is not None:
                root = Path(spool_dir) / "rulesets"
            self.rulesets = RulesetRegistry(root, metrics=self.metrics)
        #: (model version, ruleset version) -> compiled evaluator;
        #: populated lazily by the dispatcher thread (the only writer).
        self._evaluators: dict[tuple[int, int], RuleEvaluator] = {}
        if drift_monitors is True:
            from repro.drift.detectors import DriftMonitorBank

            drift_monitors = DriftMonitorBank.default(registry=self.metrics)
        elif drift_monitors is False:
            drift_monitors = None
        self.drift_monitors = drift_monitors
        self._accept_wall: dict[int, float] = {}
        self._stop = threading.Event()
        self._dispatcher: threading.Thread | None = None
        self._idle = threading.Condition()
        self._processing = 0
        self.started_at: float | None = None

    # ------------------------------------------------------------------
    # Submission-facing API
    # ------------------------------------------------------------------

    def submit(self, apk: Apk, lane: int | str = "bulk") -> dict:
        """Accept one submission (durable before return).

        Returns an acceptance ticket ``{md5, seq, lane, status}``.

        Raises:
            QueueFullError: admission control rejected the submission.
            WrongShardError: this service is shard-scoped and another
                shard owns the submission's md5.
        """
        if self.shard is not None:
            shard_id, n_shards = self.shard
            owner = shard_of(apk.md5, n_shards)
            if owner != shard_id:
                self.metrics.inc("serve_wrong_shard_rejects_total")
                raise WrongShardError(apk.md5, owner, shard_id, n_shards)
        entry = self.queue.submit(apk, lane)
        self._accept_wall.setdefault(entry.seq, time.perf_counter())
        return {
            "md5": entry.md5,
            "seq": entry.seq,
            "lane": lane_name(entry.lane),
            "status": self.queue.status(entry.md5),
        }

    def result(self, md5: str) -> dict:
        """Current state of one submission: terminal outcome or status."""
        outcome = self.results.get(md5)
        if outcome is not None:
            return outcome
        return {"md5": md5, "status": self.queue.status(md5)}

    def explain(self, md5: str) -> dict:
        """Behavior-rule evidence for one submission.

        Returns ``{md5, status, explanation}`` where ``explanation`` is
        a :meth:`~repro.rules.BehaviorReport.to_dict` payload for
        flagged submissions scored with rules enabled, and ``None`` for
        clean, failed, or pre-rules outcomes.  Non-terminal submissions
        report their queue status with no explanation yet.
        """
        outcome = self.results.get(md5)
        if outcome is not None:
            return {
                "md5": md5,
                "status": outcome["status"],
                "malicious": outcome.get("malicious"),
                "explanation": outcome.get("explanation"),
                "ruleset_version": outcome.get("ruleset_version"),
            }
        return {"md5": md5, "status": self.queue.status(md5)}

    def push_ruleset(self, source, metadata: dict | None = None) -> dict:
        """Validate, publish, and atomically activate a new ruleset.

        ``source`` is raw JSON bytes/text or a parsed artifact — the
        same shapes :func:`repro.rules.load_ruleset` accepts.  The
        ruleset is parsed, linted, and compiled against the active
        model's key-API hook set *before* it is published, so a bad
        push can never take over explanations; swap is atomic under
        the registry's write lock (in-flight micro-batches finish
        under the old version).

        Returns ``{ruleset_version, n_rules, sha256}``.

        Raises:
            ValueError: the ruleset failed parsing, linting, or
                compilation.
        """
        if isinstance(source, (bytes, bytearray)):
            parsed = json.loads(bytes(source).decode("utf-8"))
        elif isinstance(source, str):
            parsed = json.loads(source)
        else:
            parsed = source
        specs = tuple(load_ruleset(parsed))
        errors = [
            issue
            for issue in lint_ruleset(specs)
            if issue.severity == "error"
        ]
        if errors:
            raise ValueError(
                "ruleset failed lint: "
                + "; ".join(str(issue) for issue in errors)
            )
        checker = self.models.active_checker()
        try:
            RuleEvaluator.from_specs(
                specs, checker.sdk, tracked_api_ids=checker.key_api_ids
            )
        except RuleCompileError as exc:
            raise ValueError(f"ruleset failed compilation: {exc}") from exc
        blob = source if isinstance(source, (bytes, str)) else parsed
        rv = self.rulesets.publish(blob, metadata=metadata, activate=True)
        return {
            "ruleset_version": rv.version,
            "n_rules": rv.n_rules,
            "sha256": rv.sha256,
        }

    def record_feedback(self, md5: str, malicious: bool) -> dict:
        """Replay one market review label against a recorded verdict.

        The labeled-lag feedback stream: review labels arrive
        hours-to-days after the service's verdict.  For a terminal
        ``done`` outcome the (predicted, actual) pair feeds the
        rolling-F1 drift monitor; other states record nothing.

        Returns ``{md5, recorded, predicted, actual}`` (``predicted``
        is None when nothing was recorded).
        """
        actual = bool(malicious)
        outcome = self.results.get(md5)
        if outcome is None or outcome.get("status") != "done":
            return {
                "md5": md5,
                "recorded": False,
                "predicted": None,
                "actual": actual,
            }
        self.metrics.inc("serve_feedback_total")
        predicted = bool(outcome["malicious"])
        if self.drift_monitors is not None:
            self.drift_monitors.record_feedback(predicted, actual)
        return {
            "md5": md5,
            "recorded": True,
            "predicted": predicted,
            "actual": actual,
        }

    def healthz(self) -> dict:
        """Liveness/readiness summary for ``GET /v1/healthz``."""
        n_scored, n_agree, rate = self.models.shadow_agreement()
        rolling = None
        if (
            self.drift_monitors is not None
            and self.drift_monitors.shadow is not None
        ):
            rolling = self.drift_monitors.shadow.rolling_agreement()
        health = {
            "status": "ok" if self.running else "stopped",
            "active_model_version": self.models.active_version,
            "shadow_model_version": self.models.shadow_version,
            "ruleset_version": self.rulesets.active_version,
            "queue_depth": self.queue.depth,
            "completed": len(self.results),
            "workers": self.workers,
            "uptime_seconds": (
                time.time() - self.started_at if self.started_at else 0.0
            ),
            "shadow_agreement": {
                "n_scored": n_scored,
                "n_agree": n_agree,
                "rate": rate,
                "rolling": rolling,
            },
            "drift": (
                self.drift_monitors.status()
                if self.drift_monitors is not None else None
            ),
        }
        if self.shard is not None:
            health["shard"] = self.shard[0]
            health["n_shards"] = self.shard[1]
        return health

    def metrics_text(self) -> str:
        """Prometheus text exposition for ``GET /metrics``."""
        return self.metrics.to_prometheus()

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------

    @property
    def running(self) -> bool:
        return (
            self._dispatcher is not None and self._dispatcher.is_alive()
        )

    def start(self) -> "OnlineVettingService":
        """Start the dispatcher (idempotent)."""
        if self.running:
            return self
        self.models.active_checker()  # fail fast when nothing is active
        self._stop.clear()
        self.started_at = time.time()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop,
            name="serve-dispatcher",
            daemon=True,
        )
        self._dispatcher.start()
        return self

    def stop(self, timeout: float = 10.0) -> frozenset[str]:
        """Stop draining; the in-flight batch completes first.

        Returns the md5s abandoned mid-queue — accepted submissions
        that never reached a terminal outcome.  Their acceptance
        records are still uncompleted in the WAL, so a restart on the
        same spool replays them; a shard router logs (or requeues)
        exactly this set on shutdown.
        """
        self._stop.set()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout)
            self._dispatcher = None
        return self.queue.pending_md5s()

    def close(self) -> frozenset[str]:
        abandoned = self.stop()
        self.queue.close()
        return abandoned

    def drain(self, timeout: float = 30.0) -> DrainStatus:
        """Block until every accepted submission is terminal.

        Returns a :class:`DrainStatus`: truthy when the queue fully
        drained, falsy on timeout — with the still-pending md5 set
        attached either way.  The service must be running.
        """
        deadline = time.monotonic() + timeout
        with self._idle:
            while True:
                if self.queue.depth == 0 and self._processing == 0:
                    return DrainStatus(True, frozenset())
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self.running:
                    drained = (
                        self.queue.depth == 0 and self._processing == 0
                    )
                    return DrainStatus(drained, self.queue.pending_md5s())
                self._idle.wait(min(remaining, 0.25))

    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            batch = self.queue.take_batch(
                self.batch_size, timeout=self.poll_seconds
            )
            if not batch:
                continue
            with self._idle:
                self._processing += len(batch)
            try:
                self._process_batch(batch)
            finally:
                with self._idle:
                    self._processing -= len(batch)
                    self._idle.notify_all()

    def _default_pipeline(self, engine) -> VettingPipeline:
        """The default dispatch: a pipeline over this service's config."""
        return VettingPipeline(
            engine,
            cluster=self.cluster,
            workers=self.workers,
            cache=self.cache,
            pace_seconds_per_minute=self.pace_seconds_per_minute,
            registry=self.metrics,
            sink=self.sink,
        )

    def _evaluator_for(
        self,
        version: int,
        checker,
        ruleset_version: int,
        specs,
    ) -> RuleEvaluator:
        """The evaluator compiled for one (model, ruleset) version pair.

        Key-API sets differ per fitted checker and rule evidence per
        ruleset version, so each pair gets its own compilation; a
        ruleset hot swap therefore invalidates the cache by key, never
        in place.  Only the dispatcher thread touches the cache.
        """
        key = (version, ruleset_version)
        evaluator = self._evaluators.get(key)
        if evaluator is None:
            evaluator = RuleEvaluator.from_specs(
                specs,
                checker.sdk,
                tracked_api_ids=checker.key_api_ids,
                registry=self.metrics,
                sink=self.sink,
            )
            self._evaluators[key] = evaluator
            # Bound the cache: superseded (model, ruleset) compilations
            # are never read again once both pointers move on.
            while len(self._evaluators) > 8:
                stale = next(
                    k for k in self._evaluators if k != key
                )
                del self._evaluators[stale]
        return evaluator

    def _process_batch(self, batch: list[SubmissionRecord]) -> None:
        """Analyze and score one micro-batch under one model lease.

        The ruleset lease is held for the whole batch alongside the
        model lease, so every submission in it is explained by exactly
        one ruleset version — a concurrent ruleset push waits for the
        batch to finish.
        """
        if not batch:
            return
        self.metrics.inc("serve_batches_total")
        with self.models.lease() as (
            version,
            checker,
            shadow,
        ), self.rulesets.lease() as (ruleset_version, ruleset_specs):
            pipeline = self.pipeline_factory(checker.production_engine)
            result = pipeline.run([entry.apk for entry in batch])
            # One blocked scoring call for the whole micro-batch (and
            # one more for the shadow model), all under this lease.
            analyzed = [
                analysis
                for analysis in result.analyses
                if analysis is not None
            ]
            verdicts = checker.verdicts_from_observations(
                [a.observation for a in analyzed],
                analysis_minutes=[a.total_minutes for a in analyzed],
                fell_back=[a.fell_back for a in analyzed],
            )
            shadow_version = None
            shadow_verdicts = None
            if shadow is not None:
                shadow_version, shadow_checker = shadow
                shadow_verdicts = shadow_checker.verdicts_from_observations(
                    [a.observation for a in analyzed]
                )
            # Drift monitoring input: the batch's encoded feature rows
            # under the serving model's space.  Encoded inside the
            # lease (the space belongs to the leased checker), consumed
            # outside it.
            drift_matrix = None
            if (
                self.drift_monitors is not None
                and self.drift_monitors.psi is not None
                and analyzed
            ):
                drift_matrix = checker.feature_space.encode_batch(
                    [a.observation for a in analyzed]
                )
            outcomes: list[tuple[SubmissionRecord, dict, bool | None]] = []
            scored = 0
            for entry, analysis in zip(batch, result.analyses):
                if analysis is None:
                    failure = next(
                        (
                            f.reason
                            for f in result.failures
                            if f.apk_md5 == entry.md5
                        ),
                        "analysis failed",
                    )
                    outcomes.append(
                        (
                            entry,
                            {
                                "md5": entry.md5,
                                "status": "failed",
                                "reason": failure,
                                "model_version": version,
                                "ruleset_version": ruleset_version,
                                "lane": lane_name(entry.lane),
                            },
                            None,
                        )
                    )
                    continue
                verdict = verdicts[scored]
                agreed: bool | None = None
                if shadow_verdicts is not None:
                    agreed = (
                        shadow_verdicts[scored].malicious == verdict.malicious
                    )
                scored += 1
                explanation = None
                if self.rules_enabled and verdict.malicious:
                    report = self._evaluator_for(
                        version, checker, ruleset_version, ruleset_specs
                    ).evaluate_one(analysis.observation)
                    explanation = report.to_dict()
                outcomes.append(
                    (
                        entry,
                        {
                            "md5": entry.md5,
                            "status": "done",
                            "malicious": verdict.malicious,
                            "probability": verdict.probability,
                            "analysis_minutes": verdict.analysis_minutes,
                            "fell_back": verdict.fell_back,
                            "from_cache": analysis.from_cache,
                            "model_version": version,
                            "shadow_model_version": shadow_version,
                            "ruleset_version": ruleset_version,
                            "lane": lane_name(entry.lane),
                            "explanation": explanation,
                        },
                        agreed,
                    )
                )
        # Outside the lease: durably record outcomes and update tallies
        # (the shadow tally takes the registry's mutate lock, which must
        # never be acquired while holding a read lease).
        if drift_matrix is not None:
            psi = self.drift_monitors.psi
            reference = psi._reference  # noqa: SLF001 - dispatcher-only
            if reference is None or reference.size != drift_matrix.shape[1]:
                # No operator-supplied training reference (or a model
                # swap changed the feature space): baseline on the
                # first traffic scored under this space.
                psi.set_reference(drift_matrix)
            self.drift_monitors.record_block(drift_matrix)
        for entry, outcome, agreed in outcomes:
            self.metrics.inc("serve_scored_total")
            if agreed is not None:
                self.models.record_shadow_result(agreed)
                if self.drift_monitors is not None:
                    self.drift_monitors.record_shadow(agreed)
            if outcome["status"] == "failed":
                self.metrics.inc("serve_failed_total")
            elif outcome.get("malicious"):
                self.metrics.inc("serve_flagged_total")
            self.queue.mark_done(entry, outcome)
            self.results[entry.md5] = outcome
            accepted = self._accept_wall.pop(entry.seq, None)
            if accepted is not None:
                self.metrics.observe(
                    "serve_e2e_seconds",
                    time.perf_counter() - accepted,
                    buckets=E2E_BUCKETS,
                )

    def __enter__(self) -> "OnlineVettingService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()


# Re-exported for convenience: callers catching admission rejects at the
# service layer shouldn't need to import the queue module.
OnlineVettingService.QueueFullError = QueueFullError
OnlineVettingService.WrongShardError = WrongShardError
