"""Shadow-gated model promotion for the monthly evolution loop.

The paper's deployment retrains monthly and swaps the model in (§5.3,
§6).  A bad retrain — label noise in the month's reviews, an SDK bump
that reshuffles the key-API set — would silently regress the live
service if the swap were unconditional.  :class:`ShadowPromotionGate`
makes the swap conditional: the candidate is published to the
:class:`~repro.serve.registry.ModelRegistry`, staged as the shadow
model, replayed against the month's study observations alongside the
active model, and promoted only when verdict agreement clears a
threshold.  Rejected candidates are recorded (state ``rejected``, plus
a :class:`~repro.serve.registry.PromotionDecision` in the manifest) and
the active model keeps serving.

Wire it into :class:`~repro.core.evolution.EvolutionLoop` via the
``model_gate`` hook::

    registry = ModelRegistry(tmp / "models")
    loop = EvolutionLoop(stream, initial, ...)
    registry.publish(loop.checker, metadata={"source": "bootstrap"},
                     activate=True)
    loop.model_gate = ShadowPromotionGate(registry, min_agreement=0.9)
    record = loop.run_month()          # record.promotion holds the decision
"""

from __future__ import annotations

from repro.core.checker import ApiChecker
from repro.core.features import AppObservation
from repro.serve.registry import ModelRegistry, PromotionDecision

__all__ = ["ShadowPromotionGate"]


class ShadowPromotionGate:
    """Publish → shadow → replay → promote-or-reject, as one callable.

    Matches the :class:`~repro.core.evolution.EvolutionLoop`
    ``model_gate`` protocol: called with the retrained candidate and
    the month's observations, returns a
    :class:`~repro.serve.registry.PromotionDecision` whose ``promoted``
    flag tells the loop whether to adopt the candidate.

    Args:
        registry: the model registry; must hold an active version (the
            loop's current model) before the first call.
        min_agreement: verdict agreement rate the candidate must reach
            against the active model.
        min_samples: minimum replayed submissions for a valid decision;
            a smaller month keeps the active model (no-data no-swap).
        max_replay: cap on replayed observations per decision (bounds
            gate latency for large months).
    """

    def __init__(
        self,
        registry: ModelRegistry,
        min_agreement: float = 0.95,
        min_samples: int = 20,
        max_replay: int = 1000,
    ):
        if not 0.0 < min_agreement <= 1.0:
            raise ValueError("min_agreement must be in (0, 1]")
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if max_replay < min_samples:
            raise ValueError("max_replay must be >= min_samples")
        self.registry = registry
        self.min_agreement = min_agreement
        self.min_samples = min_samples
        self.max_replay = max_replay

    def __call__(
        self,
        candidate: ApiChecker,
        observations: list[AppObservation],
        metadata: dict | None = None,
    ) -> PromotionDecision:
        if self.registry.active_version is None:
            raise RuntimeError(
                "ShadowPromotionGate needs an active model to compare "
                "against; publish the loop's current checker with "
                "activate=True first"
            )
        meta = {"source": "evolution", "n_replay": 0}
        meta.update(metadata or {})
        version = self.registry.publish(candidate, metadata=meta).version
        self.registry.stage_shadow(version)
        replay = observations[: self.max_replay]
        self.registry.versions[version].metadata["n_replay"] = len(replay)
        for observation in replay:
            self.registry.score(observation)
        return self.registry.promote_on_agreement(
            min_agreement=self.min_agreement,
            min_samples=self.min_samples,
        )
