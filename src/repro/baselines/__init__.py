"""Related-work baselines (Table 1).

Simplified but faithful re-implementations of the representative
API-centric detectors the paper compares against, each using its
published feature source (static vs. dynamic extraction, API budget)
and classifier family, all running over the same corpus substrate so
Table 1's comparison can be regenerated end to end.
"""

from repro.baselines.base import BaselineDetector, Table1Row
from repro.baselines.drebin import Drebin
from repro.baselines.droidapiminer import DroidApiMiner
from repro.baselines.droidcat import DroidCat
from repro.baselines.droiddolphin import DroidDolphin
from repro.baselines.sharma import SharmaEnsemble
from repro.baselines.yang2017 import YangDynamic

ALL_BASELINES = (
    SharmaEnsemble,
    DroidApiMiner,
    YangDynamic,
    DroidCat,
    DroidDolphin,
    Drebin,
)

__all__ = [
    "ALL_BASELINES",
    "BaselineDetector",
    "Drebin",
    "DroidApiMiner",
    "DroidCat",
    "DroidDolphin",
    "SharmaEnsemble",
    "Table1Row",
    "YangDynamic",
]
