"""Yang et al. (CCPE 2017): dynamic inspection of 19 restricted APIs.

Examines the runtime use of 19 APIs guarded by three special permission
types (device/system information, network access, account charging)
over a long (~18 minute) emulation, classifying with an SVM (Table 1:
92.8% precision, 84.9% recall).  The emulation platform is a stock
emulator, so probe-equipped malware can detect it and go quiet.
"""

from __future__ import annotations

import numpy as np

from repro.android.apk import Apk
from repro.baselines.base import BaselineDetector
from repro.core.engine import DynamicAnalysisEngine
from repro.core.selection import invocation_matrix
from repro.emulator.backends import GoogleEmulator
from repro.emulator.device import DeviceEnvironment
from repro.ml.svm import LinearSVM


class YangDynamic(BaselineDetector):
    """Long-running dynamic analysis over 19 restricted APIs."""

    system_name = "Yang et al."
    selection_strategy = "restrictive permissions"
    analysis_method = "dynamic"
    API_BUDGET = 19
    #: ~18 minutes of emulation per app at the reference event pace.
    MONKEY_EVENTS = 42_000

    def __init__(self, sdk, seed: int = 0):
        super().__init__(sdk, seed)
        # The 19 most restrictive-permission APIs by id order stand in
        # for the three special permission groups.
        self._api_ids = np.sort(sdk.restricted_api_ids)[: self.API_BUDGET]
        self._svm = LinearSVM(epochs=20, seed=seed)
        self._engine = DynamicAnalysisEngine(
            sdk,
            tracked_api_ids=self._api_ids,
            primary=GoogleEmulator(),
            fallback=None,
            env=DeviceEnvironment.stock_emulator(),
            monkey_events=self.MONKEY_EVENTS,
            seed=seed,
        )
        self._mean_minutes: float | None = None

    @property
    def n_apis(self) -> int:
        return self.API_BUDGET

    def _features(self, apps: list[Apk]) -> np.ndarray:
        analyses = self._engine.analyze_corpus(list(apps))
        self._mean_minutes = float(
            np.mean([a.total_minutes for a in analyses])
        )
        obs = [a.observation for a in analyses]
        X_full = invocation_matrix(obs, len(self.sdk))
        return X_full[:, self._api_ids]

    def fit(self, apps: list[Apk], labels: np.ndarray):
        self._svm.fit(self._features(apps), np.asarray(labels).astype(np.uint8))
        self._fitted = True
        return self

    def predict(self, apps: list[Apk]) -> np.ndarray:
        self._require_fitted()
        return self._svm.predict(self._features(apps))

    def analysis_seconds(self, apps: list[Apk]) -> float:
        if self._mean_minutes is None:
            self._features(list(apps))
        return self._mean_minutes * 60.0
