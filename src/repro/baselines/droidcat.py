"""DroidCat (TIFS 2019): app-level behavioural profiling + random forest.

Semi-dynamic: ~122 behavioural features combining manually picked APIs,
inter-component communication (intents), and risky sources/sinks, fed
to a random forest (Table 1: 97.5% precision, 97.3% recall, ~354 s per
app).  Its known weakness — no handling of dynamically loaded code —
is faithful here: apps using dynamic loading contribute degraded
features.
"""

from __future__ import annotations

import numpy as np

from repro.android.apk import Apk
from repro.baselines.base import BaselineDetector
from repro.core.engine import DynamicAnalysisEngine
from repro.core.selection import invocation_matrix
from repro.emulator.backends import GoogleEmulator
from repro.emulator.device import DeviceEnvironment
from repro.ml.forest import RandomForest
from repro.staticanalysis.api_extractor import StaticApiExtractor


class DroidCat(BaselineDetector):
    """Behavioural-profile random forest."""

    system_name = "DroidCat"
    selection_strategy = "sensitive operations"
    analysis_method = "semi-dynamic"
    API_BUDGET = 27
    MONKEY_EVENTS = 14_000  # ~354 s of profiling per app

    def __init__(self, sdk, seed: int = 0):
        super().__init__(sdk, seed)
        rng = np.random.default_rng(seed)
        sensitive = np.sort(sdk.sensitive_api_ids)
        self._api_ids = sensitive[: self.API_BUDGET]
        self._extractor = StaticApiExtractor(sdk)
        self._rf = RandomForest(n_trees=40, seed=seed)
        self._engine = DynamicAnalysisEngine(
            sdk,
            tracked_api_ids=self._api_ids,
            primary=GoogleEmulator(),
            fallback=None,
            env=DeviceEnvironment.stock_emulator(),
            monkey_events=self.MONKEY_EVENTS,
            seed=seed,
        )
        self._mean_minutes: float | None = None

    @property
    def n_apis(self) -> int:
        return self.API_BUDGET

    def _features(self, apps: list[Apk]) -> np.ndarray:
        analyses = self._engine.analyze_corpus(list(apps))
        self._mean_minutes = float(
            np.mean([a.total_minutes for a in analyses])
        )
        obs = [a.observation for a in analyses]
        X_api = invocation_matrix(obs, len(self.sdk))[:, self._api_ids]
        X_icc = self._extractor.intent_matrix(apps)
        # Dynamic code loading blinds DroidCat: features of such apps
        # lose the dynamic half (the profile never sees loaded code).
        dyn = np.array(
            [a.dex.uses_dynamic_loading for a in apps], dtype=bool
        )
        X_api[dyn] = 0
        return np.hstack([X_api, X_icc])

    def fit(self, apps: list[Apk], labels: np.ndarray):
        self._rf.fit(self._features(apps), np.asarray(labels).astype(np.uint8))
        self._fitted = True
        return self

    def predict(self, apps: list[Apk]) -> np.ndarray:
        self._require_fitted()
        return self._rf.predict(self._features(apps))

    def analysis_seconds(self, apps: list[Apk]) -> float:
        if self._mean_minutes is None:
            self._features(list(apps))
        return self._mean_minutes * 60.0
