"""DroidAPIMiner (SecureComm 2013): 169 frequency-mined APIs + kNN.

Statically mines APIs whose usage frequency differs most between
malware and benign apps, then classifies with kNN (best of its four
models; ~25 s static analysis per APK in Table 1).
"""

from __future__ import annotations

import numpy as np

from repro.android.apk import Apk
from repro.baselines.base import BaselineDetector
from repro.ml.knn import KNearestNeighbors
from repro.staticanalysis.api_extractor import StaticApiExtractor


class DroidApiMiner(BaselineDetector):
    """Static frequency-contrast API mining with a kNN classifier."""

    system_name = "DroidAPIMiner"
    selection_strategy = "statistical correlations"
    analysis_method = "static"
    API_BUDGET = 169

    def __init__(self, sdk, seed: int = 0):
        super().__init__(sdk, seed)
        self._extractor = StaticApiExtractor(sdk)
        self._api_ids: np.ndarray | None = None
        self._knn = KNearestNeighbors(k=3)

    @property
    def n_apis(self) -> int:
        return self.API_BUDGET

    def fit(self, apps: list[Apk], labels: np.ndarray):
        labels = np.asarray(labels).astype(bool)
        X_all = self._extractor.usage_matrix(apps, np.arange(len(self.sdk)))
        if labels.all() or not labels.any():
            raise ValueError("need both classes to mine frequency contrast")
        freq_mal = X_all[labels].mean(axis=0)
        freq_ben = X_all[~labels].mean(axis=0)
        # The paper keeps APIs whose malware usage exceeds benign usage
        # by the largest margins.
        contrast = freq_mal - freq_ben
        self._api_ids = np.sort(
            np.argsort(contrast)[::-1][: self.API_BUDGET]
        )
        self._knn.fit(X_all[:, self._api_ids], labels.astype(np.uint8))
        self._fitted = True
        return self

    def predict(self, apps: list[Apk]) -> np.ndarray:
        self._require_fitted()
        X = self._extractor.usage_matrix(apps, self._api_ids)
        return self._knn.predict(X)

    def analysis_seconds(self, apps: list[Apk]) -> float:
        sizes = np.array([a.size_mb for a in apps])
        # ~25 s per APK for dex decompilation and API walk.
        return float(np.mean(12.0 + sizes * 0.6))
