"""DREBIN (NDSS 2014): broad static features + linear SVM.

Gathers permission-restricted APIs, suspicious (sensitive-operation)
APIs, requested permissions, and declared intents from the APK, and
classifies with a linear SVM (~10 s static feature collection per app
in Table 1).
"""

from __future__ import annotations

import numpy as np

from repro.android.apk import Apk
from repro.baselines.base import BaselineDetector
from repro.ml.svm import LinearSVM
from repro.staticanalysis.api_extractor import StaticApiExtractor


class Drebin(BaselineDetector):
    """Static hybrid feature SVM."""

    system_name = "DREBIN"
    selection_strategy = "hybrid"
    analysis_method = "static"

    def __init__(self, sdk, seed: int = 0):
        super().__init__(sdk, seed)
        self._extractor = StaticApiExtractor(sdk)
        self._api_ids = np.unique(
            np.concatenate([sdk.restricted_api_ids, sdk.sensitive_api_ids])
        )
        self._svm = LinearSVM(epochs=20, seed=seed)

    @property
    def n_apis(self) -> int:
        return int(self._api_ids.size)

    def _features(self, apps: list[Apk]) -> np.ndarray:
        return np.hstack(
            [
                self._extractor.usage_matrix(apps, self._api_ids),
                self._extractor.permission_matrix(apps),
                self._extractor.intent_matrix(apps),
            ]
        )

    def fit(self, apps: list[Apk], labels: np.ndarray):
        self._svm.fit(self._features(apps), np.asarray(labels).astype(np.uint8))
        self._fitted = True
        return self

    def predict(self, apps: list[Apk]) -> np.ndarray:
        self._require_fitted()
        return self._svm.predict(self._features(apps))

    def analysis_seconds(self, apps: list[Apk]) -> float:
        sizes = np.array([a.size_mb for a in apps])
        # ~10 s on-device feature collection.
        return float(np.mean(6.0 + sizes * 0.2))
