"""Common baseline interface and the Table 1 row model."""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.android.apk import Apk
from repro.android.sdk import AndroidSdk
from repro.ml.metrics import ClassificationReport, evaluate


@dataclass(frozen=True)
class Table1Row:
    """One row of the related-work comparison table."""

    system: str
    strategy: str
    method: str
    analysis_seconds_per_app: float
    n_apis: int
    n_apps: int
    precision: float
    recall: float


class BaselineDetector(abc.ABC):
    """A related-work malware detector over the corpus substrate.

    Subclasses declare their published metadata (selection strategy,
    analysis method) and implement feature extraction + classification.
    """

    #: Published metadata (Table 1 columns).
    system_name: str = "baseline"
    selection_strategy: str = ""
    analysis_method: str = "static"

    def __init__(self, sdk: AndroidSdk, seed: int = 0):
        self.sdk = sdk
        self.seed = seed
        self._fitted = False

    @abc.abstractmethod
    def fit(self, apps: list[Apk], labels: np.ndarray) -> "BaselineDetector":
        """Select features and train the published classifier."""

    @abc.abstractmethod
    def predict(self, apps: list[Apk]) -> np.ndarray:
        """Hard malice predictions for a batch of apps."""

    @abc.abstractmethod
    def analysis_seconds(self, apps: list[Apk]) -> float:
        """Mean per-app feature-extraction time (simulated seconds)."""

    @property
    @abc.abstractmethod
    def n_apis(self) -> int:
        """Number of framework APIs the detector monitors."""

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError(
                f"{type(self).__name__} must be fitted before prediction"
            )

    def evaluate(
        self, apps: list[Apk], labels: np.ndarray
    ) -> ClassificationReport:
        return evaluate(np.asarray(labels), self.predict(apps))

    def table_row(
        self, apps: list[Apk], labels: np.ndarray, n_apps_studied: int
    ) -> Table1Row:
        """Evaluate and emit this system's Table 1 row."""
        report = self.evaluate(apps, labels)
        return Table1Row(
            system=self.system_name,
            strategy=self.selection_strategy,
            method=self.analysis_method,
            analysis_seconds_per_app=self.analysis_seconds(apps),
            n_apis=self.n_apis,
            n_apps=n_apps_studied,
            precision=report.precision,
            recall=report.recall,
        )
