"""DroidDolphin (RACS 2014): big-data dynamic analysis + SVM.

Checks the runtime use of 25 APIs and 13 types of sensitive operations
over a ~17-minute emulation and classifies with an SVM (Table 1: 90%
precision, 82% recall).
"""

from __future__ import annotations

import numpy as np

from repro.android.apk import Apk
from repro.baselines.base import BaselineDetector
from repro.core.engine import DynamicAnalysisEngine
from repro.core.selection import invocation_matrix
from repro.emulator.backends import GoogleEmulator
from repro.emulator.device import DeviceEnvironment
from repro.ml.svm import LinearSVM


class DroidDolphin(BaselineDetector):
    """Dynamic 25-API + sensitive-operation SVM."""

    system_name = "DroidDolphin"
    selection_strategy = "sensitive operations"
    analysis_method = "dynamic"
    API_BUDGET = 25
    MONKEY_EVENTS = 40_000  # ~17 minutes per app

    def __init__(self, sdk, seed: int = 0):
        super().__init__(sdk, seed)
        sensitive = np.sort(sdk.sensitive_api_ids)
        # 25 tracked APIs plus 13 aggregate sensitive-operation flags.
        self._api_ids = sensitive[-self.API_BUDGET:]
        self._op_groups = np.array_split(sensitive, 13)
        self._svm = LinearSVM(epochs=20, seed=seed)
        self._engine = DynamicAnalysisEngine(
            sdk,
            tracked_api_ids=np.sort(sensitive),
            primary=GoogleEmulator(),
            fallback=None,
            env=DeviceEnvironment.stock_emulator(),
            monkey_events=self.MONKEY_EVENTS,
            seed=seed,
        )
        self._mean_minutes: float | None = None

    @property
    def n_apis(self) -> int:
        return self.API_BUDGET

    def _features(self, apps: list[Apk]) -> np.ndarray:
        analyses = self._engine.analyze_corpus(list(apps))
        self._mean_minutes = float(
            np.mean([a.total_minutes for a in analyses])
        )
        obs = [a.observation for a in analyses]
        X_full = invocation_matrix(obs, len(self.sdk))
        X_api = X_full[:, self._api_ids]
        # 13 sensitive-operation indicators: any API of the group fired.
        ops = np.stack(
            [X_full[:, g].any(axis=1) for g in self._op_groups], axis=1
        ).astype(np.uint8)
        return np.hstack([X_api, ops])

    def fit(self, apps: list[Apk], labels: np.ndarray):
        self._svm.fit(self._features(apps), np.asarray(labels).astype(np.uint8))
        self._fitted = True
        return self

    def predict(self, apps: list[Apk]) -> np.ndarray:
        self._require_fitted()
        return self._svm.predict(self._features(apps))

    def analysis_seconds(self, apps: list[Apk]) -> float:
        if self._mean_minutes is None:
            self._features(list(apps))
        return self._mean_minutes * 60.0
