"""Sharma et al. (CANS 2014): 35 correlated APIs, NB + kNN ensemble.

Statically extracts the 35 APIs most correlated with malice and
combines naive Bayes and kNN classifiers (Table 1 row: 91.2% precision,
97.5% recall over 1,600 apps).
"""

from __future__ import annotations

import numpy as np

from repro.android.apk import Apk
from repro.baselines.base import BaselineDetector
from repro.ml.knn import KNearestNeighbors
from repro.ml.naive_bayes import BernoulliNaiveBayes
from repro.ml.stats import spearman_rho_columns
from repro.staticanalysis.api_extractor import StaticApiExtractor


class SharmaEnsemble(BaselineDetector):
    """Static 35-API NB+kNN ensemble."""

    system_name = "Sharma et al."
    selection_strategy = "statistical correlations"
    analysis_method = "static"
    API_BUDGET = 35

    def __init__(self, sdk, seed: int = 0):
        super().__init__(sdk, seed)
        self._extractor = StaticApiExtractor(sdk)
        self._api_ids: np.ndarray | None = None
        self._nb = BernoulliNaiveBayes()
        self._knn = KNearestNeighbors(k=5)

    @property
    def n_apis(self) -> int:
        return self.API_BUDGET

    def fit(self, apps: list[Apk], labels: np.ndarray):
        labels = np.asarray(labels).astype(np.uint8)
        all_ids = np.arange(len(self.sdk))
        X_all = self._extractor.usage_matrix(apps, all_ids)
        src = spearman_rho_columns(X_all, labels)
        self._api_ids = np.sort(np.argsort(np.abs(src))[::-1][: self.API_BUDGET])
        X = X_all[:, self._api_ids]
        self._nb.fit(X, labels)
        self._knn.fit(X, labels)
        self._fitted = True
        return self

    def predict(self, apps: list[Apk]) -> np.ndarray:
        self._require_fitted()
        X = self._extractor.usage_matrix(apps, self._api_ids)
        # Soft-vote the two classifiers, as in the paper's combination.
        proba = (self._nb.predict_proba(X) + self._knn.predict_proba(X)) / 2
        return (proba >= 0.5).astype(np.int8)

    def analysis_seconds(self, apps: list[Apk]) -> float:
        # Static decompile + scan scales with package size.
        sizes = np.array([a.size_mb for a in apps])
        return float(np.mean(2.0 + sizes * 0.15))
