"""Synthetic Android platform substrate.

The paper's pipeline consumes real APKs running against the real Android
SDK (~50K framework APIs).  Neither is available offline, so this package
provides a deterministic, statistically calibrated stand-in:

* :mod:`repro.android.sdk` — a generated framework-API registry with
  packages, classes, permission mappings, sensitive-operation categories,
  and invocation-frequency strata.
* :mod:`repro.android.permissions` / :mod:`repro.android.intents` — the
  permission and intent-action registries, including the canonical names
  the paper reports in its Gini-importance ranking (Fig. 13).
* :mod:`repro.android.manifest` / :mod:`repro.android.dex` /
  :mod:`repro.android.apk` — the APK model: an ``AndroidManifest.xml``
  equivalent plus a Dex code model recording direct API call sites,
  reflection-hidden call sites, intent usage, and native libraries.
"""

from repro.android.apk import Apk
from repro.android.components import Activity, BroadcastReceiver, Service
from repro.android.dex import DexCode
from repro.android.intents import IntentAction, IntentRegistry
from repro.android.manifest import AndroidManifest
from repro.android.permission_map import PermissionMap, extract_permission_map
from repro.android.permissions import (
    Permission,
    PermissionRegistry,
    ProtectionLevel,
)
from repro.android.sdk import (
    AndroidSdk,
    ApiMethod,
    FrequencyClass,
    SensitiveCategory,
)

__all__ = [
    "Activity",
    "AndroidManifest",
    "AndroidSdk",
    "Apk",
    "ApiMethod",
    "BroadcastReceiver",
    "DexCode",
    "FrequencyClass",
    "IntentAction",
    "IntentRegistry",
    "Permission",
    "PermissionMap",
    "PermissionRegistry",
    "ProtectionLevel",
    "SensitiveCategory",
    "Service",
    "extract_permission_map",
]
