"""Android app component models.

An Android app declares its components — Activities (UI screens),
Services (background work), and BroadcastReceivers (intent listeners) —
in its manifest.  The paper's Referred Activity Coverage metric (§4.2)
distinguishes *declared* activities from those actually *referenced* by
code (on average only 88% are referenced), so each Activity here carries
a ``referenced`` flag plus the UI-exploration weight used by the Monkey
model to decide how easily the activity is reached.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Activity:
    """A declared Activity.

    Attributes:
        name: component class name (unique within the app).
        referenced: whether any code path actually references the
            activity; unreferenced activities can never be visited.
        exported: whether other apps may launch it.
        reach_weight: relative ease of reaching the activity during UI
            exploration (higher = visited earlier by Monkey).
    """

    name: str
    referenced: bool = True
    exported: bool = False
    reach_weight: float = 1.0

    def __post_init__(self):
        if self.reach_weight <= 0:
            raise ValueError("reach_weight must be positive")


@dataclass(frozen=True)
class Service:
    """A declared Service."""

    name: str
    exported: bool = False
    foreground: bool = False


@dataclass(frozen=True)
class BroadcastReceiver:
    """A declared BroadcastReceiver with its intent filter.

    Attributes:
        name: component class name.
        intent_filters: intent actions the receiver listens for; these
            surface as *used intents* in the paper's auxiliary features.
    """

    name: str
    intent_filters: tuple[str, ...] = field(default_factory=tuple)
    exported: bool = False
