"""APK model: manifest + dex + identity.

T-Market treats APKs with the same package name but different MD5 hashes
as different apps (§4.1); ~85% of submissions are updates of previously
published apps.  The ``Apk`` object therefore carries both the package
identity and a content hash, plus the ground-truth label metadata the
market's review process produces.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.android.dex import DexCode
from repro.android.manifest import AndroidManifest


@dataclass(frozen=True)
class Apk:
    """A submitted Android package.

    Attributes:
        manifest: static metadata.
        dex: code model.
        is_malicious: generator ground truth (hidden from detectors; the
            market's review process derives possibly noisy labels from it).
        family: malware family or benign category name (generator truth).
        size_mb: package size, drives install time.
        submitted_day: day index of submission to the market (0-based).
        parent_md5: MD5 of the version this update supersedes, if any.
    """

    manifest: AndroidManifest
    dex: DexCode
    is_malicious: bool
    family: str
    size_mb: float = 20.0
    submitted_day: int = 0
    parent_md5: str | None = None
    _md5: str = field(default="", repr=False, compare=False)

    def __post_init__(self):
        if self.size_mb <= 0:
            raise ValueError("size_mb must be positive")
        if not self._md5:
            object.__setattr__(self, "_md5", self._compute_md5())

    def _compute_md5(self) -> str:
        """Content hash over identity-bearing fields.

        Mirrors hashing the APK bytes: any change to the manifest or code
        yields a new hash, while re-submitting identical content does not.
        """
        h = hashlib.md5()
        h.update(self.manifest.package_name.encode())
        h.update(str(self.manifest.version_code).encode())
        h.update(",".join(self.manifest.requested_permissions).encode())
        h.update(",".join(a.name for a in self.manifest.activities).encode())
        for site in self.dex.call_sites:
            h.update(
                f"{site.api_id}:{site.rate_multiplier:.6f}:"
                f"{site.reach_quantile:.6f};".encode()
            )
        h.update(",".join(map(str, self.dex.reflection_api_ids)).encode())
        h.update(",".join(self.dex.sent_intents).encode())
        h.update(",".join(lib.name for lib in self.dex.native_libs).encode())
        return h.hexdigest()

    @property
    def md5(self) -> str:
        return self._md5

    @property
    def package_name(self) -> str:
        return self.manifest.package_name

    @property
    def is_update(self) -> bool:
        return self.parent_md5 is not None

    def __hash__(self) -> int:
        return hash(self.md5)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        kind = "malicious" if self.is_malicious else "benign"
        return f"<Apk {self.package_name} v{self.manifest.version_code} {kind}>"
