"""API→permission map extraction (the axplorer / PScout stand-in).

The paper selects Set-P with two published static-analysis artifacts —
axplorer's and PScout's API→permission maps (§4.4 step 2).  Those tools
walk the Android framework sources; here the equivalent walk runs over
the synthetic registry and emits the same kind of artifact: a versioned
text map from fully qualified API names to permission names, restricted
to dangerous/signature levels.

Keeping the map a *serialized artifact* (rather than peeking at the
registry) mirrors the paper's pipeline: Set-P selection consumes the
tool output, so a map from an older SDK level can be applied to a newer
corpus and the drift is visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.android.permissions import ProtectionLevel
from repro.android.sdk import AndroidSdk

_HEADER = "# repro-permission-map"


@dataclass(frozen=True)
class PermissionMap:
    """A versioned API→restrictive-permission mapping.

    Attributes:
        sdk_level: the SDK level the map was extracted from.
        entries: api_name -> permission_name (restrictive levels only).
    """

    sdk_level: int
    entries: dict[str, str]

    def __len__(self) -> int:
        return len(self.entries)

    def permission_for(self, api_name: str) -> str | None:
        return self.entries.get(api_name)

    def restricted_api_ids(self, sdk: AndroidSdk) -> np.ndarray:
        """Resolve the map against a registry (possibly a newer level).

        APIs the map knows that no longer exist are skipped; APIs added
        after the map's level are invisible — exactly the staleness an
        operator sees when applying last year's axplorer dump.
        """
        ids = []
        for name in self.entries:
            try:
                ids.append(sdk.by_name(name).api_id)
            except KeyError:
                continue
        return np.array(sorted(ids), dtype=int)

    # ------------------------------------------------------------------
    # Serialization (axplorer-style two-column text format)
    # ------------------------------------------------------------------

    def write(self, path: str | Path) -> None:
        path = Path(path)
        lines = [f"{_HEADER} level={self.sdk_level}"]
        for api_name in sorted(self.entries):
            lines.append(f"{api_name}  ->  {self.entries[api_name]}")
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")

    @classmethod
    def read(cls, path: str | Path) -> "PermissionMap":
        path = Path(path)
        lines = path.read_text(encoding="utf-8").splitlines()
        if not lines or not lines[0].startswith(_HEADER):
            raise ValueError(f"{path}: not a permission map artifact")
        try:
            level = int(lines[0].split("level=", 1)[1])
        except (IndexError, ValueError) as exc:
            raise ValueError(f"{path}: malformed header") from exc
        entries = {}
        for line_no, line in enumerate(lines[1:], start=2):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            if "  ->  " not in line:
                raise ValueError(f"{path}:{line_no}: malformed entry")
            api_name, permission = line.split("  ->  ", 1)
            entries[api_name.strip()] = permission.strip()
        return cls(sdk_level=level, entries=entries)


def extract_permission_map(sdk: AndroidSdk) -> PermissionMap:
    """Walk the registry and emit its restrictive API→permission map.

    Only dangerous- and signature-level guards qualify (the paper's
    "restrictive permissions"); normal-level guards are dropped, exactly
    as Set-P construction requires.
    """
    entries: dict[str, str] = {}
    for api in sdk:
        if api.permission is None:
            continue
        level = sdk.permissions.get(api.permission).level
        if level is ProtectionLevel.NORMAL:
            continue
        entries[api.name] = api.permission
    return PermissionMap(sdk_level=sdk.level, entries=entries)
