"""AndroidManifest model.

The manifest (``AndroidManifest.xml`` in a real APK) carries the app's
package name, the permissions it requests, and its declared components.
Requested permissions are one of the paper's two auxiliary feature
sources (§4.5): even when malware hides a key-API call behind reflection,
the permission guarding the underlying operation must still be requested
in the manifest.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.android.components import Activity, BroadcastReceiver, Service


@dataclass(frozen=True)
class AndroidManifest:
    """Static app metadata.

    Attributes:
        package_name: reverse-DNS package identifier.
        version_code: monotonically increasing integer per update.
        requested_permissions: permission names requested by the app.
        activities / services / receivers: declared components.
        min_sdk_level: minimum SDK level the app supports.
    """

    package_name: str
    version_code: int = 1
    requested_permissions: tuple[str, ...] = field(default_factory=tuple)
    activities: tuple[Activity, ...] = field(default_factory=tuple)
    services: tuple[Service, ...] = field(default_factory=tuple)
    receivers: tuple[BroadcastReceiver, ...] = field(default_factory=tuple)
    min_sdk_level: int = 19

    def __post_init__(self):
        if not self.package_name:
            raise ValueError("package_name must be non-empty")
        if self.version_code < 1:
            raise ValueError("version_code must be >= 1")
        names = [a.name for a in self.activities]
        if len(set(names)) != len(names):
            raise ValueError("duplicate activity names in manifest")

    @property
    def declared_activity_count(self) -> int:
        return len(self.activities)

    @property
    def referenced_activities(self) -> tuple[Activity, ...]:
        """Activities actually referenced by code (the RAC denominator)."""
        return tuple(a for a in self.activities if a.referenced)

    @property
    def receiver_intent_actions(self) -> tuple[str, ...]:
        """All intent actions the app's receivers listen for (sorted)."""
        actions = {f for r in self.receivers for f in r.intent_filters}
        return tuple(sorted(actions))

    def requests(self, permission_name: str) -> bool:
        return permission_name in self.requested_permissions
