"""Synthetic Android framework-API registry.

The real Android SDK exposes >50,000 framework APIs; the paper's feature
universe is the set of those APIs, each optionally guarded by a
permission, optionally performing a sensitive operation, and invoked at
wildly different frequencies.  This module generates a deterministic
registry with the same *structure*:

* a fixed stratum of **restricted** APIs guarded by dangerous/signature
  permissions (the paper's Set-P source, 112 APIs),
* a fixed stratum of **sensitive-operation** APIs across the paper's five
  attack-relevant categories (the Set-S source, 70 APIs),
* a latent stratum of **discriminative** APIs that the corpus generator
  makes malware-leaning (what SRC mining should recover as Set-C),
* a stratum of **ubiquitous** APIs invoked by virtually every app at very
  high rates (file I/O, view plumbing — the paper's 13 frequent
  negatively correlated APIs live here), and
* a long **tail** of seldom-invoked APIs.

Invocation-frequency strata are what make the paper's timing trade-offs
(Figs. 3, 6, 9, 16) emerge: hooking a ubiquitous API is far more
expensive than hooking a rare one.

The registry also carries an internal call graph (``internal_calls``)
used by :mod:`repro.staticanalysis.coverage` to reproduce the §5.4
observation that ~9.6% of non-key APIs internally depend on key APIs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.android.intents import IntentRegistry
from repro.android.permissions import PermissionRegistry


class SensitiveCategory(enum.Enum):
    """The paper's five categories of sensitive operations (§4.4 step 3)."""

    PRIVILEGE_ESCALATION = "privilege_escalation"
    DATA_STORE = "data_store"
    UI_COMPONENT = "ui_component"
    CRYPTO = "crypto"
    DYNAMIC_CODE = "dynamic_code"


class FrequencyClass(enum.Enum):
    """Invocation-frequency stratum of an API.

    The attached value is the mean invocation rate per Monkey event for
    an app that references the API (calibrated so a 5K-event emulation
    triggers tens of millions of invocations in total, per Fig. 2).
    """

    UBIQUITOUS = 28.0
    COMMON = 14.0
    MODERATE = 0.5
    RARE = 0.02


@dataclass(frozen=True)
class ApiMethod:
    """One framework API method.

    Attributes:
        api_id: dense integer index into the registry (stable per SDK).
        name: fully qualified ``package.Class.method`` name.
        package: the declaring package.
        class_name: the declaring class.
        method_name: the method identifier.
        permission: guarding permission name, or None when unguarded.
        sensitive_category: sensitive-operation category, or None.
        freq_class: invocation-frequency stratum.
        base_rate: expected invocations per Monkey event when referenced.
        added_in_level: SDK level in which the API first appeared.
    """

    api_id: int
    name: str
    package: str
    class_name: str
    method_name: str
    permission: str | None
    sensitive_category: SensitiveCategory | None
    freq_class: FrequencyClass
    base_rate: float
    added_in_level: int

    @property
    def short_name(self) -> str:
        """``Class_method`` alias as used in the paper's Fig. 13."""
        return f"{self.class_name}_{self.method_name}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass(frozen=True)
class SdkSpec:
    """Size/shape parameters for a generated SDK.

    Stratum sizes are absolute (not fractions of ``n_apis``) because the
    paper's Set-P/Set-S counts are fixed by the permission map and domain
    knowledge, not by the SDK's total size.
    """

    n_apis: int = 6000
    level: int = 27
    n_restricted: int = 112
    n_sensitive: int = 70
    n_discriminative: int = 260
    n_disc_restricted: int = 12
    n_disc_sensitive: int = 4
    n_ubiquitous: int = 200
    n_permissions: int = 160
    n_intents: int = 96
    dependency_fraction: float = 0.096
    seed: int = 0

    def validate(self) -> None:
        fixed = self.n_restricted + self.n_sensitive + self.n_ubiquitous
        disc_outside = (
            self.n_discriminative - self.n_disc_restricted - self.n_disc_sensitive
        )
        if disc_outside < 0:
            raise ValueError("discriminative overlaps exceed n_discriminative")
        if self.n_disc_restricted > self.n_restricted:
            raise ValueError("n_disc_restricted exceeds n_restricted")
        if self.n_disc_sensitive > self.n_sensitive:
            raise ValueError("n_disc_sensitive exceeds n_sensitive")
        if self.n_apis < fixed + disc_outside + 100:
            raise ValueError(
                f"n_apis={self.n_apis} too small for the configured strata"
            )
        if not 0.0 <= self.dependency_fraction < 1.0:
            raise ValueError("dependency_fraction must be in [0, 1)")


#: Canonical APIs from the paper (Fig. 13 and §4.4 examples), seeded into
#: every registry: (package, class, method, permission, category, stratum).
_CANONICAL_APIS: tuple[tuple[str, str, str, str | None, SensitiveCategory | None, str], ...] = (
    ("android.telephony", "SmsManager", "sendTextMessage",
     "android.permission.SEND_SMS", None, "restricted"),
    ("android.telephony", "TelephonyManager", "getLine1Number",
     "android.permission.READ_PHONE_STATE", None, "restricted"),
    ("android.net.wifi", "WifiInfo", "getMacAddress",
     None, None, "discriminative"),
    ("android.view", "View", "setBackgroundColor",
     None, None, "discriminative"),
    ("android.database.sqlite", "SQLiteDatabase", "insertWithOnConflict",
     None, SensitiveCategory.DATA_STORE, "sensitive"),
    ("java.net", "HttpURLConnection", "connect",
     None, None, "discriminative"),
    ("android.app", "ActivityManager", "getRunningTasks",
     None, SensitiveCategory.UI_COMPONENT, "sensitive"),
    ("java.lang", "Runtime", "exec",
     None, SensitiveCategory.PRIVILEGE_ESCALATION, "sensitive"),
    ("dalvik.system", "DexClassLoader", "loadClass",
     None, SensitiveCategory.DYNAMIC_CODE, "sensitive"),
    ("javax.crypto", "Cipher", "doFinal",
     None, SensitiveCategory.CRYPTO, "sensitive"),
    ("android.view", "WindowManager", "addView",
     "android.permission.SYSTEM_ALERT_WINDOW", SensitiveCategory.UI_COMPONENT,
     "restricted"),
    ("android.content", "ContentResolver", "query",
     None, SensitiveCategory.DATA_STORE, "sensitive"),
)

#: Canonical ubiquitous common-operation APIs (the paper notes 13 frequent
#: APIs with SRC <= -0.2 performing operations like file I/O).
_CANONICAL_UBIQUITOUS: tuple[tuple[str, str, str], ...] = (
    ("java.io", "File", "exists"),
    ("java.io", "FileInputStream", "read"),
    ("java.io", "FileOutputStream", "write"),
    ("java.io", "BufferedReader", "readLine"),
    ("android.util", "Log", "d"),
    ("android.os", "Handler", "post"),
    ("android.view", "LayoutInflater", "inflate"),
    ("android.content", "SharedPreferences", "getString"),
    ("android.content", "Context", "getResources"),
    ("java.util", "ArrayList", "add"),
    ("android.view", "View", "findViewById"),
    ("android.os", "Bundle", "getString"),
    ("android.widget", "TextView", "setText"),
)

_PACKAGES = (
    "android.app", "android.content", "android.content.pm", "android.database",
    "android.database.sqlite", "android.graphics", "android.hardware",
    "android.location", "android.media", "android.net", "android.net.wifi",
    "android.os", "android.provider", "android.telephony", "android.util",
    "android.view", "android.webkit", "android.widget", "android.bluetooth",
    "android.accounts", "android.animation", "android.text", "android.security",
    "android.print", "android.nfc", "java.io", "java.lang", "java.net",
    "java.util", "javax.crypto", "dalvik.system", "org.json",
)

_CLASS_NOUNS = (
    "Manager", "Service", "Provider", "Monitor", "Controller", "Session",
    "Adapter", "Helper", "Client", "Registry", "Dispatcher", "Tracker",
    "Builder", "Loader", "Resolver", "Channel", "Broker", "Cache",
)

_CLASS_SUBJECTS = (
    "Network", "Display", "Audio", "Sensor", "Account", "Package", "Storage",
    "Input", "Media", "Location", "Telephony", "Window", "Sync", "Print",
    "Camera", "Battery", "Clipboard", "Download", "Notification", "Usage",
    "Wallpaper", "Vibrator", "Keyguard", "Backup", "Bluetooth", "Nfc",
    "Wifi", "Activity", "Fragment", "Cursor", "Render", "Theme",
)

_METHOD_VERBS = (
    "get", "set", "query", "update", "open", "close", "register",
    "unregister", "start", "stop", "bind", "unbind", "create", "release",
    "request", "send", "read", "write", "enable", "disable", "fetch",
    "apply", "load", "clear", "notify", "acquire", "dispatch", "resolve",
)

_METHOD_NOUNS = (
    "State", "Info", "Config", "Session", "Handle", "Listener", "Callback",
    "Buffer", "Stream", "Record", "Status", "Policy", "Token", "Profile",
    "Metrics", "Snapshot", "Channel", "Cursor", "Bounds", "Params", "Cache",
    "Flags", "Mode", "Options", "Result", "Context", "Update", "Quota",
)


def _rate_for(freq_class: FrequencyClass, rng: np.random.Generator) -> float:
    """Draw a per-event invocation rate around the class mean (lognormal)."""
    mean = freq_class.value
    return float(mean * rng.lognormal(mean=0.0, sigma=0.6))


class AndroidSdk:
    """A generated Android SDK release.

    Instances are immutable in practice: :meth:`extend` returns a new SDK
    at the next level rather than mutating in place, mirroring how real
    SDK releases supersede each other (§5.3 model evolution).
    """

    def __init__(
        self,
        spec: SdkSpec,
        apis: list[ApiMethod],
        permissions: PermissionRegistry,
        intents: IntentRegistry,
        restricted_ids: np.ndarray,
        sensitive_ids: np.ndarray,
        discriminative_ids: np.ndarray,
        ubiquitous_ids: np.ndarray,
        internal_calls: dict[int, tuple[int, ...]],
    ):
        self.spec = spec
        self.level = spec.level
        self._apis = apis
        self.permissions = permissions
        self.intents = intents
        self._restricted_ids = np.sort(restricted_ids)
        self._sensitive_ids = np.sort(sensitive_ids)
        self._discriminative_ids = np.sort(discriminative_ids)
        self._ubiquitous_ids = np.sort(ubiquitous_ids)
        self.internal_calls = internal_calls
        self._base_rates = np.array([a.base_rate for a in apis])
        self._by_name = {a.name: a for a in apis}
        self._common_ops_ids = np.array(
            [
                self._by_name[f"{pkg}.{clazz}.{method}"].api_id
                for pkg, clazz, method in _CANONICAL_UBIQUITOUS
            ],
            dtype=int,
        )

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------

    @classmethod
    def generate(cls, spec: SdkSpec | None = None, **overrides) -> "AndroidSdk":
        """Generate a deterministic SDK from ``spec`` (or keyword overrides)."""
        if spec is None:
            spec = SdkSpec(**overrides)
        elif overrides:
            raise TypeError("pass either a spec or keyword overrides, not both")
        spec.validate()
        rng = np.random.default_rng(spec.seed)

        permissions = PermissionRegistry.generate(spec.n_permissions, seed=spec.seed)
        intents = IntentRegistry.generate(spec.n_intents, seed=spec.seed)
        restrictive_names = [p.name for p in permissions.restrictive()]

        apis: list[ApiMethod] = []
        names: set[str] = set()
        restricted: list[int] = []
        sensitive: list[int] = []
        discriminative: list[int] = []
        ubiquitous: list[int] = []

        def add(package, class_name, method, permission, category, freq_class):
            api_id = len(apis)
            name = f"{package}.{class_name}.{method}"
            if name in names:
                return None
            api = ApiMethod(
                api_id=api_id,
                name=name,
                package=package,
                class_name=class_name,
                method_name=method,
                permission=permission,
                sensitive_category=category,
                freq_class=freq_class,
                base_rate=_rate_for(freq_class, rng),
                added_in_level=spec.level,
            )
            apis.append(api)
            names.add(name)
            return api_id

        # Canonical named APIs first so their ids are stable across scales.
        for pkg, clazz, method, perm, cat, stratum in _CANONICAL_APIS:
            freq = FrequencyClass.COMMON
            api_id = add(pkg, clazz, method, perm, cat, freq)
            assert api_id is not None
            if stratum == "restricted":
                restricted.append(api_id)
            elif stratum == "sensitive":
                sensitive.append(api_id)
            if stratum in ("restricted", "sensitive", "discriminative"):
                # Canonical attack-relevant APIs are all malware-leaning.
                discriminative.append(api_id)

        for pkg, clazz, method in _CANONICAL_UBIQUITOUS:
            api_id = add(pkg, clazz, method, None, None, FrequencyClass.UBIQUITOUS)
            assert api_id is not None
            ubiquitous.append(api_id)

        def synth_name(i: int) -> tuple[str, str, str]:
            pkg = _PACKAGES[int(rng.integers(len(_PACKAGES)))]
            clazz = (
                _CLASS_SUBJECTS[int(rng.integers(len(_CLASS_SUBJECTS)))]
                + _CLASS_NOUNS[int(rng.integers(len(_CLASS_NOUNS)))]
            )
            method = (
                _METHOD_VERBS[int(rng.integers(len(_METHOD_VERBS)))]
                + _METHOD_NOUNS[int(rng.integers(len(_METHOD_NOUNS)))]
            )
            return pkg, clazz, method

        def fill(stratum_list, target, permission_pool, category_pool, freq_chooser):
            while len(stratum_list) < target:
                pkg, clazz, method = synth_name(len(apis))
                perm = None
                if permission_pool is not None:
                    perm = permission_pool[int(rng.integers(len(permission_pool)))]
                cat = None
                if category_pool is not None:
                    cat = category_pool[int(rng.integers(len(category_pool)))]
                api_id = add(pkg, clazz, method, perm, cat, freq_chooser())
                if api_id is not None:
                    stratum_list.append(api_id)

        # Key-stratum APIs (restricted/sensitive/discriminative) are
        # invoked at moderate-to-common rates: hot enough that hooking
        # them costs real time (Figs. 9/15/16), far below ubiquitous.
        moderate_or_rare = lambda: (
            FrequencyClass.COMMON if rng.random() < 0.65
            else FrequencyClass.MODERATE
        )
        fill(restricted, spec.n_restricted, restrictive_names, None, moderate_or_rare)
        fill(
            sensitive,
            spec.n_sensitive,
            None,
            list(SensitiveCategory),
            moderate_or_rare,
        )
        fill(ubiquitous, spec.n_ubiquitous, None, None,
             lambda: FrequencyClass.UBIQUITOUS)

        # Discriminative overlaps: a few restricted and sensitive APIs are
        # also strongly malware-correlated (Fig. 8 shows ~16 overlaps).
        canonical_disc = set(discriminative)
        extra_restricted = [
            i for i in restricted if i not in canonical_disc
        ][: max(0, spec.n_disc_restricted - len([i for i in restricted if i in canonical_disc]))]
        extra_sensitive = [
            i for i in sensitive if i not in canonical_disc
        ][: max(0, spec.n_disc_sensitive - len([i for i in sensitive if i in canonical_disc]))]
        discriminative.extend(extra_restricted)
        discriminative.extend(extra_sensitive)

        # The remaining discriminative APIs are plain moderate-frequency
        # framework APIs that malware families happen to rely on.
        disc_only: list[int] = []
        fill(
            disc_only,
            spec.n_discriminative - len(discriminative),
            None,
            None,
            moderate_or_rare,
        )
        discriminative.extend(disc_only)

        # Long tail: mostly rare, some common, filling out n_apis.
        tail_freq_probs = np.array([0.03, 0.12, 0.85])
        tail_classes = (
            FrequencyClass.COMMON,
            FrequencyClass.MODERATE,
            FrequencyClass.RARE,
        )
        while len(apis) < spec.n_apis:
            pkg, clazz, method = synth_name(len(apis))
            freq = tail_classes[int(rng.choice(3, p=tail_freq_probs))]
            add(pkg, clazz, method, None, None, freq)

        internal_calls = cls._generate_internal_calls(
            spec, rng,
            n_apis=len(apis),
            key_like=np.unique(
                np.concatenate([
                    np.array(restricted, dtype=int),
                    np.array(sensitive, dtype=int),
                    np.array(discriminative, dtype=int),
                ])
            ),
        )

        return cls(
            spec=spec,
            apis=apis,
            permissions=permissions,
            intents=intents,
            restricted_ids=np.array(restricted, dtype=int),
            sensitive_ids=np.array(sensitive, dtype=int),
            discriminative_ids=np.array(sorted(set(discriminative)), dtype=int),
            ubiquitous_ids=np.array(ubiquitous, dtype=int),
            internal_calls=internal_calls,
        )

    @staticmethod
    def _generate_internal_calls(
        spec: SdkSpec,
        rng: np.random.Generator,
        n_apis: int,
        key_like: np.ndarray,
    ) -> dict[int, tuple[int, ...]]:
        """Generate the framework-internal call graph.

        A ``dependency_fraction`` share of non-key APIs is wired (directly
        or through one intermediate hop) to a key-like API, reproducing
        the §5.4 finding that 9.6% of other APIs internally rely on the
        426 key APIs.  A sprinkling of unrelated edges adds realism.
        """
        key_set = set(int(i) for i in key_like)
        non_key = np.array([i for i in range(n_apis) if i not in key_set])
        n_dependent = int(round(spec.dependency_fraction * len(non_key)))
        dependent = rng.choice(non_key, size=n_dependent, replace=False)
        calls: dict[int, list[int]] = {}
        # Two-thirds call a key API directly; one third goes through an
        # intermediate dependent API (transitive reliance).
        direct_cut = (2 * n_dependent) // 3
        for idx, api_id in enumerate(dependent):
            api_id = int(api_id)
            if idx < direct_cut or idx == 0:
                target = int(key_like[int(rng.integers(len(key_like)))])
            else:
                target = int(dependent[int(rng.integers(idx))])
            calls.setdefault(api_id, []).append(target)
        # Noise edges between non-dependent, non-key APIs only, so they
        # never create accidental paths into the key set.
        dependent_set = {int(i) for i in dependent}
        plain = [i for i in non_key if int(i) not in dependent_set]
        n_noise = min(len(plain) // 2, max(0, n_apis // 20))
        if len(plain) >= 2 and n_noise:
            sources = rng.choice(plain, size=n_noise, replace=False)
            for src in sources:
                dst = int(plain[int(rng.integers(len(plain)))])
                if dst != int(src):
                    calls.setdefault(int(src), []).append(dst)
        return {k: tuple(v) for k, v in calls.items()}

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._apis)

    def __iter__(self):
        return iter(self._apis)

    def api(self, api_id: int) -> ApiMethod:
        return self._apis[api_id]

    def by_name(self, name: str) -> ApiMethod:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"unknown API: {name!r}") from None

    @property
    def api_names(self) -> list[str]:
        return [a.name for a in self._apis]

    @property
    def base_rates(self) -> np.ndarray:
        """Per-API expected invocations per Monkey event (copy-safe view)."""
        return self._base_rates

    @property
    def restricted_api_ids(self) -> np.ndarray:
        """APIs guarded by dangerous/signature permissions (Set-P source)."""
        return self._restricted_ids

    @property
    def sensitive_api_ids(self) -> np.ndarray:
        """APIs performing sensitive operations (Set-S source)."""
        return self._sensitive_ids

    @property
    def discriminative_api_ids(self) -> np.ndarray:
        """Latent malware-leaning APIs.

        This is *generator ground truth* used only by the corpus
        synthesizer; the detector never reads it.  SRC mining (Set-C)
        should approximately recover this set from data.
        """
        return self._discriminative_ids

    @property
    def ubiquitous_api_ids(self) -> np.ndarray:
        return self._ubiquitous_ids

    @property
    def common_ops_api_ids(self) -> np.ndarray:
        """The 13 canonical frequent common-operation APIs.

        These are the paper's frequently invoked APIs with SRC <= -0.2
        (file I/O and similar): malware uses them noticeably *less* than
        benign apps, so they join Set-C with negative correlation and —
        being ubiquitous — dominate the key-API hook cost.
        """
        return self._common_ops_ids

    def sensitive_apis(self, category: SensitiveCategory) -> list[ApiMethod]:
        return [
            self._apis[i]
            for i in self._sensitive_ids
            if self._apis[i].sensitive_category is category
        ]

    # ------------------------------------------------------------------
    # Evolution
    # ------------------------------------------------------------------

    def extend(self, n_new: int, seed: int | None = None) -> "AndroidSdk":
        """Return a new SDK at ``level + 1`` with ``n_new`` additional APIs.

        New APIs land in the tail (mostly rare); occasionally one is
        malware-leaning, which lets the key-API set drift over months as
        in Fig. 14.
        """
        if n_new < 0:
            raise ValueError("n_new must be non-negative")
        seed = self.spec.seed + self.level + 1 if seed is None else seed
        rng = np.random.default_rng(seed)
        apis = list(self._apis)
        names = set(self._by_name)
        new_disc: list[int] = []
        tail_classes = (
            FrequencyClass.COMMON,
            FrequencyClass.MODERATE,
            FrequencyClass.RARE,
        )
        tail_probs = np.array([0.05, 0.2, 0.75])
        while len(apis) < len(self._apis) + n_new:
            pkg = _PACKAGES[int(rng.integers(len(_PACKAGES)))]
            clazz = (
                _CLASS_SUBJECTS[int(rng.integers(len(_CLASS_SUBJECTS)))]
                + _CLASS_NOUNS[int(rng.integers(len(_CLASS_NOUNS)))]
            )
            method = (
                _METHOD_VERBS[int(rng.integers(len(_METHOD_VERBS)))]
                + _METHOD_NOUNS[int(rng.integers(len(_METHOD_NOUNS)))]
                + f"V{self.level + 1}"
            )
            name = f"{pkg}.{clazz}.{method}"
            if name in names:
                continue
            freq = tail_classes[int(rng.choice(3, p=tail_probs))]
            api_id = len(apis)
            apis.append(
                ApiMethod(
                    api_id=api_id,
                    name=name,
                    package=pkg,
                    class_name=clazz,
                    method_name=method,
                    permission=None,
                    sensitive_category=None,
                    freq_class=freq,
                    base_rate=_rate_for(freq, rng),
                    added_in_level=self.level + 1,
                )
            )
            names.add(name)
            if rng.random() < 0.08:
                new_disc.append(api_id)

        spec = SdkSpec(
            n_apis=len(apis),
            level=self.level + 1,
            n_restricted=self.spec.n_restricted,
            n_sensitive=self.spec.n_sensitive,
            n_discriminative=self.spec.n_discriminative + len(new_disc),
            n_disc_restricted=self.spec.n_disc_restricted,
            n_disc_sensitive=self.spec.n_disc_sensitive,
            n_ubiquitous=self.spec.n_ubiquitous,
            n_permissions=self.spec.n_permissions,
            n_intents=self.spec.n_intents,
            dependency_fraction=self.spec.dependency_fraction,
            seed=self.spec.seed,
        )
        discriminative = np.concatenate(
            [self._discriminative_ids, np.array(new_disc, dtype=int)]
        )
        return AndroidSdk(
            spec=spec,
            apis=apis,
            permissions=self.permissions,
            intents=self.intents,
            restricted_ids=self._restricted_ids,
            sensitive_ids=self._sensitive_ids,
            discriminative_ids=discriminative,
            ubiquitous_ids=self._ubiquitous_ids,
            internal_calls=self.internal_calls,
        )
