"""Android intent-action model.

Intents are Android's IPC currency: apps send them to request actions
from other apps/services and register receivers to observe system-level
broadcasts.  The paper treats *used intents* as an auxiliary feature
(§4.5) because malware delegates sensitive actions over intents to avoid
invoking monitored framework APIs directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class IntentAction:
    """A single intent action string.

    Attributes:
        name: the action constant, e.g.
            ``android.provider.Telephony.SMS_RECEIVED``.
        system_broadcast: True when the action is a system-originated
            broadcast (apps *receive* it); False for app-originated
            request actions (apps *send* it).
    """

    name: str
    system_broadcast: bool

    @property
    def short_name(self) -> str:
        return self.name.rsplit(".", 1)[-1]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


#: The five intents the paper reports among the top-20 most important
#: features (Fig. 13), always present in a generated registry.
CANONICAL_INTENTS: tuple[tuple[str, bool], ...] = (
    ("android.provider.Telephony.SMS_RECEIVED", True),
    ("android.net.wifi.STATE_CHANGE", True),
    ("android.app.action.DEVICE_ADMIN_ENABLED", True),
    ("android.bluetooth.adapter.action.STATE_CHANGED", True),
    ("android.intent.action.ACTION_BATTERY_OKAY", True),
)

_COMMON_INTENTS: tuple[tuple[str, bool], ...] = (
    ("android.intent.action.BOOT_COMPLETED", True),
    ("android.intent.action.BATTERY_LOW", True),
    ("android.intent.action.PACKAGE_ADDED", True),
    ("android.intent.action.PACKAGE_REMOVED", True),
    ("android.intent.action.USER_PRESENT", True),
    ("android.intent.action.SCREEN_ON", True),
    ("android.intent.action.SCREEN_OFF", True),
    ("android.intent.action.NEW_OUTGOING_CALL", True),
    ("android.intent.action.PHONE_STATE", True),
    ("android.net.conn.CONNECTIVITY_CHANGE", True),
    ("android.intent.action.AIRPLANE_MODE", True),
    ("android.intent.action.TIMEZONE_CHANGED", True),
    ("android.intent.action.VIEW", False),
    ("android.intent.action.SEND", False),
    ("android.intent.action.SENDTO", False),
    ("android.intent.action.CALL", False),
    ("android.intent.action.DIAL", False),
    ("android.intent.action.PICK", False),
    ("android.intent.action.EDIT", False),
    ("android.intent.action.INSTALL_PACKAGE", False),
    ("android.intent.action.DELETE", False),
    ("android.media.action.IMAGE_CAPTURE", False),
    ("android.settings.SETTINGS", False),
    ("android.intent.action.GET_CONTENT", False),
)

_SYNTH_EVENTS = (
    "SYNC_COMPLETE", "DOWNLOAD_DONE", "MEDIA_MOUNTED", "DOCK_EVENT",
    "HEADSET_PLUG", "LOCALE_CHANGED", "STORAGE_LOW", "INPUT_ATTACHED",
    "PROFILE_SWITCHED", "ALARM_FIRED", "NFC_DISCOVERED", "SHUTDOWN",
    "WALLPAPER_CHANGED", "PROVIDER_CHANGED", "CAMERA_BUTTON",
    "PROXY_CHANGE", "UID_REMOVED", "DATE_CHANGED", "DREAMING_STARTED",
    "CARRIER_SWITCH",
)


class IntentRegistry:
    """Registry of intent actions known to a synthetic SDK release."""

    def __init__(self, actions: list[IntentAction]):
        if not actions:
            raise ValueError("an intent registry cannot be empty")
        self._actions = list(actions)
        self._by_name = {a.name: a for a in self._actions}
        if len(self._by_name) != len(self._actions):
            raise ValueError("duplicate intent actions in registry")

    @classmethod
    def generate(cls, n_actions: int = 96, seed: int = 0) -> "IntentRegistry":
        """Generate a registry with ``n_actions`` actions.

        The canonical Fig. 13 intents and common real-world actions are
        always present; the remainder are synthetic system broadcasts and
        request actions in roughly a 60/40 split.
        """
        base = list(CANONICAL_INTENTS) + list(_COMMON_INTENTS)
        if n_actions < len(base):
            raise ValueError(
                f"n_actions must be >= {len(base)} to hold the canonical set"
            )
        rng = np.random.default_rng(seed)
        actions = [IntentAction(name, sysb) for name, sysb in base]
        names = {a.name for a in actions}
        i = 0
        while len(actions) < n_actions:
            event = _SYNTH_EVENTS[i % len(_SYNTH_EVENTS)]
            suffix = i // len(_SYNTH_EVENTS)
            name = f"android.intent.action.{event}"
            if suffix:
                name = f"{name}_{suffix}"
            i += 1
            if name in names:
                continue
            actions.append(IntentAction(name, bool(rng.random() < 0.6)))
            names.add(name)
        return cls(actions)

    def __len__(self) -> int:
        return len(self._actions)

    def __iter__(self):
        return iter(self._actions)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def get(self, name: str) -> IntentAction:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"unknown intent action: {name!r}") from None

    @property
    def names(self) -> list[str]:
        return [a.name for a in self._actions]

    def system_broadcasts(self) -> list[IntentAction]:
        return [a for a in self._actions if a.system_broadcast]

    def request_actions(self) -> list[IntentAction]:
        return [a for a in self._actions if not a.system_broadcast]
