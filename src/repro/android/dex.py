"""Dex code model.

``classes.dex`` in a real APK holds the app's compiled bytecode; for the
pipeline all that matters is which framework APIs the code can invoke, at
what rates, how deep in the UI they sit, and which evasive mechanisms the
code employs.  This module captures exactly that.

Three evasion mechanisms from the paper are modelled:

* **Reflection-hidden calls** (§4.5): the behaviour is performed through
  internal/hidden APIs, so the framework-API hook never fires — but the
  guarding permission must still be requested in the manifest.
* **Intent delegation** (§4.5): the app asks another app/service to act
  on its behalf; the hook never fires, but the used intent is observable.
* **Emulator probes** (§4.2): code that checks for tell-tale emulator
  signs and suppresses malicious behaviour when any probe succeeds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class EmulatorProbe(enum.Enum):
    """Emulator-detection techniques observed in the paper's corpus."""

    DEFAULT_IDENTIFIERS = "default_identifiers"   # stock IMEI/IMSI values
    BUILD_PROPS = "build_props"                   # PRODUCT/MODEL strings
    NETWORK_PROPS = "network_props"               # /proc/net/tcp contents
    INPUT_TIMING = "input_timing"                 # robotic event intervals
    SENSOR_LIVENESS = "sensor_liveness"           # flat accelerometer feed
    XPOSED_PRESENCE = "xposed_presence"           # hook-framework artifacts


class NativeIsa(enum.Enum):
    """Instruction set a native library was compiled for."""

    ARM = "arm"
    X86 = "x86"


@dataclass(frozen=True)
class NativeLib:
    """A bundled native library (``lib/*.so``).

    ARM libraries require binary translation (Intel Houdini) on the
    lightweight x86 emulator; a small fraction is incompatible and forces
    fallback to the full-system emulator (§5.1).
    """

    name: str
    isa: NativeIsa = NativeIsa.ARM
    size_mb: float = 2.0
    houdini_compatible: bool = True

    def __post_init__(self):
        if self.size_mb <= 0:
            raise ValueError("size_mb must be positive")


@dataclass(frozen=True)
class ApiCallSite:
    """A direct framework-API call site in the app code.

    Attributes:
        api_id: the framework API invoked.
        rate_multiplier: scales the API's SDK base invocation rate for
            this app (how intensely this app exercises the API).
        reach_quantile: UI depth of the call site in [0, 1]; the site is
            exercised during emulation only once achieved activity
            coverage (RAC) reaches this quantile.
    """

    api_id: int
    rate_multiplier: float = 1.0
    reach_quantile: float = 0.0

    def __post_init__(self):
        if self.api_id < 0:
            raise ValueError("api_id must be non-negative")
        if self.rate_multiplier <= 0:
            raise ValueError("rate_multiplier must be positive")
        if not 0.0 <= self.reach_quantile <= 1.0:
            raise ValueError("reach_quantile must be in [0, 1]")


@dataclass(frozen=True)
class DexCode:
    """The code half of an APK.

    Attributes:
        call_sites: direct framework-API call sites.
        reflection_api_ids: APIs whose behaviour is performed through
            reflection/hidden APIs instead of direct invocation.
        sent_intents: intent actions the code sends at runtime.
        native_libs: bundled native libraries.
        emulator_probes: anti-emulation checks the code performs.
        uses_dynamic_loading: loads additional code at runtime.
        obfuscated: identifier obfuscation applied (blocks the static
            referenced-activity scan, §4.2).
        needs_live_sensors: requires real-time data from special sensors
            (e.g. microphone) that no emulator can synthesize; such apps
            invoke fewer APIs even on the hardened emulator (§4.2).
    """

    call_sites: tuple[ApiCallSite, ...] = field(default_factory=tuple)
    reflection_api_ids: tuple[int, ...] = field(default_factory=tuple)
    sent_intents: tuple[str, ...] = field(default_factory=tuple)
    native_libs: tuple[NativeLib, ...] = field(default_factory=tuple)
    emulator_probes: tuple[EmulatorProbe, ...] = field(default_factory=tuple)
    uses_dynamic_loading: bool = False
    obfuscated: bool = False
    needs_live_sensors: bool = False

    def __post_init__(self):
        seen = set()
        for site in self.call_sites:
            if site.api_id in seen:
                raise ValueError(
                    f"duplicate call site for api_id={site.api_id}; "
                    "merge rate multipliers instead"
                )
            seen.add(site.api_id)

    @property
    def direct_api_ids(self) -> tuple[int, ...]:
        """APIs with at least one direct call site (sorted)."""
        return tuple(sorted(s.api_id for s in self.call_sites))

    @property
    def has_arm_native_code(self) -> bool:
        return any(lib.isa is NativeIsa.ARM for lib in self.native_libs)

    @property
    def houdini_incompatible(self) -> bool:
        """True when any ARM library cannot be binary-translated."""
        return any(
            lib.isa is NativeIsa.ARM and not lib.houdini_compatible
            for lib in self.native_libs
        )

    def site_for(self, api_id: int) -> ApiCallSite | None:
        for site in self.call_sites:
            if site.api_id == api_id:
                return site
        return None
