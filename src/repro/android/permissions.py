"""Android permission model.

Android permissions carry one of three protection levels (normal,
dangerous, signature).  APIs guarded by dangerous- or signature-level
permissions are the paper's *restrictive-permission* APIs (Set-P, §4.4
step 2), identified there with the axplorer and PScout mappings.  Here the
mapping is carried directly on the synthetic SDK registry; this module
defines the permission objects and the registry they live in.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np


class ProtectionLevel(enum.Enum):
    """Protection level of an Android permission.

    ``DANGEROUS`` and ``SIGNATURE`` levels guard sensitive user data or
    privileged system features; the paper calls permissions at these two
    levels *restrictive*.
    """

    NORMAL = "normal"
    DANGEROUS = "dangerous"
    SIGNATURE = "signature"

    @property
    def is_restrictive(self) -> bool:
        return self is not ProtectionLevel.NORMAL


@dataclass(frozen=True)
class Permission:
    """A single Android permission.

    Attributes:
        name: fully qualified name, e.g. ``android.permission.SEND_SMS``.
        level: the permission's protection level.
    """

    name: str
    level: ProtectionLevel

    @property
    def short_name(self) -> str:
        """The trailing identifier, e.g. ``SEND_SMS``."""
        return self.name.rsplit(".", 1)[-1]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


#: The eight permissions the paper reports among the top-20 most important
#: features (Fig. 13), seeded verbatim into every generated registry.
CANONICAL_PERMISSIONS: tuple[tuple[str, ProtectionLevel], ...] = (
    ("android.permission.SEND_SMS", ProtectionLevel.DANGEROUS),
    ("android.permission.RECEIVE_SMS", ProtectionLevel.DANGEROUS),
    ("android.permission.RECEIVE_MMS", ProtectionLevel.DANGEROUS),
    ("android.permission.RECEIVE_WAP_PUSH", ProtectionLevel.DANGEROUS),
    ("android.permission.READ_SMS", ProtectionLevel.DANGEROUS),
    ("android.permission.ACCESS_NETWORK_STATE", ProtectionLevel.NORMAL),
    ("android.permission.SYSTEM_ALERT_WINDOW", ProtectionLevel.SIGNATURE),
    ("android.permission.RECEIVE_BOOT_COMPLETED", ProtectionLevel.NORMAL),
)

#: Additional well-known permissions used to give generated names a
#: realistic flavour before falling back to synthetic identifiers.
_COMMON_PERMISSIONS: tuple[tuple[str, ProtectionLevel], ...] = (
    ("android.permission.INTERNET", ProtectionLevel.NORMAL),
    ("android.permission.READ_CONTACTS", ProtectionLevel.DANGEROUS),
    ("android.permission.WRITE_CONTACTS", ProtectionLevel.DANGEROUS),
    ("android.permission.ACCESS_FINE_LOCATION", ProtectionLevel.DANGEROUS),
    ("android.permission.ACCESS_COARSE_LOCATION", ProtectionLevel.DANGEROUS),
    ("android.permission.CAMERA", ProtectionLevel.DANGEROUS),
    ("android.permission.RECORD_AUDIO", ProtectionLevel.DANGEROUS),
    ("android.permission.READ_PHONE_STATE", ProtectionLevel.DANGEROUS),
    ("android.permission.CALL_PHONE", ProtectionLevel.DANGEROUS),
    ("android.permission.READ_EXTERNAL_STORAGE", ProtectionLevel.DANGEROUS),
    ("android.permission.WRITE_EXTERNAL_STORAGE", ProtectionLevel.DANGEROUS),
    ("android.permission.READ_CALL_LOG", ProtectionLevel.DANGEROUS),
    ("android.permission.WRITE_CALL_LOG", ProtectionLevel.DANGEROUS),
    ("android.permission.GET_ACCOUNTS", ProtectionLevel.DANGEROUS),
    ("android.permission.BLUETOOTH", ProtectionLevel.NORMAL),
    ("android.permission.BLUETOOTH_ADMIN", ProtectionLevel.NORMAL),
    ("android.permission.NFC", ProtectionLevel.NORMAL),
    ("android.permission.VIBRATE", ProtectionLevel.NORMAL),
    ("android.permission.WAKE_LOCK", ProtectionLevel.NORMAL),
    ("android.permission.CHANGE_WIFI_STATE", ProtectionLevel.NORMAL),
    ("android.permission.ACCESS_WIFI_STATE", ProtectionLevel.NORMAL),
    ("android.permission.INSTALL_PACKAGES", ProtectionLevel.SIGNATURE),
    ("android.permission.DELETE_PACKAGES", ProtectionLevel.SIGNATURE),
    ("android.permission.WRITE_SECURE_SETTINGS", ProtectionLevel.SIGNATURE),
    ("android.permission.REBOOT", ProtectionLevel.SIGNATURE),
    ("android.permission.DEVICE_POWER", ProtectionLevel.SIGNATURE),
    ("android.permission.READ_LOGS", ProtectionLevel.SIGNATURE),
    ("android.permission.MOUNT_UNMOUNT_FILESYSTEMS", ProtectionLevel.SIGNATURE),
)

_SYNTH_SUBJECTS = (
    "SENSOR_FEED", "SCREEN_STATE", "MEDIA_SESSION", "USAGE_STATS",
    "APP_OPS", "SYNC_SETTINGS", "VOICEMAIL", "SIP_SESSION", "BODY_METRICS",
    "CALENDAR_FEED", "CLIPBOARD", "PRINT_JOB", "TV_INPUT", "WALLPAPER",
    "DREAM_STATE", "FINGERPRINT", "INFRARED", "BATTERY_STATS", "DROPBOX",
    "PACKAGE_USAGE", "NETWORK_POLICY", "SHORTCUT", "NOTIFICATION_POLICY",
    "CARRIER_CONFIG", "DISPLAY_STATE", "INPUT_METHOD", "ACCOUNT_SYNC",
    "PROFILE_OWNER", "QUICK_SETTINGS", "OVERLAY_STATE",
)
_SYNTH_VERBS = ("READ", "WRITE", "MANAGE", "BIND", "CONTROL", "MODIFY")


class PermissionRegistry:
    """A registry of all permissions known to a synthetic SDK release.

    The registry is generated deterministically from a seed.  Canonical
    and common permissions are always present; further synthetic
    permissions are appended until ``n_permissions`` names exist.
    """

    def __init__(self, permissions: list[Permission]):
        if not permissions:
            raise ValueError("a permission registry cannot be empty")
        self._permissions = list(permissions)
        self._by_name = {p.name: p for p in self._permissions}
        if len(self._by_name) != len(self._permissions):
            raise ValueError("duplicate permission names in registry")

    @classmethod
    def generate(cls, n_permissions: int = 160, seed: int = 0) -> "PermissionRegistry":
        """Generate a registry with ``n_permissions`` entries.

        Canonical (Fig. 13) permissions come first and are always present,
        followed by common real-world permissions, then synthetic ones
        with levels drawn to roughly match Android's split (about half
        normal, a third dangerous, the rest signature).
        """
        base = list(CANONICAL_PERMISSIONS) + list(_COMMON_PERMISSIONS)
        if n_permissions < len(base):
            raise ValueError(
                f"n_permissions must be >= {len(base)} to hold the canonical set"
            )
        rng = np.random.default_rng(seed)
        permissions = [Permission(name, level) for name, level in base]
        names = {p.name for p in permissions}
        levels = (
            ProtectionLevel.NORMAL,
            ProtectionLevel.DANGEROUS,
            ProtectionLevel.SIGNATURE,
        )
        level_probs = np.array([0.50, 0.32, 0.18])
        i = 0
        while len(permissions) < n_permissions:
            subject = _SYNTH_SUBJECTS[i % len(_SYNTH_SUBJECTS)]
            verb = _SYNTH_VERBS[(i // len(_SYNTH_SUBJECTS)) % len(_SYNTH_VERBS)]
            suffix = i // (len(_SYNTH_SUBJECTS) * len(_SYNTH_VERBS))
            name = f"android.permission.{verb}_{subject}"
            if suffix:
                name = f"{name}_{suffix}"
            i += 1
            if name in names:
                continue
            level = levels[rng.choice(3, p=level_probs)]
            permissions.append(Permission(name, level))
            names.add(name)
        return cls(permissions)

    def __len__(self) -> int:
        return len(self._permissions)

    def __iter__(self):
        return iter(self._permissions)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def get(self, name: str) -> Permission:
        """Look up a permission by fully qualified name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"unknown permission: {name!r}") from None

    @property
    def names(self) -> list[str]:
        return [p.name for p in self._permissions]

    def restrictive(self) -> list[Permission]:
        """Permissions at dangerous or signature level."""
        return [p for p in self._permissions if p.level.is_restrictive]

    def at_level(self, level: ProtectionLevel) -> list[Permission]:
        return [p for p in self._permissions if p.level is level]
