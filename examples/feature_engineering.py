#!/usr/bin/env python3
"""Feature engineering walkthrough: why A+P+I beats API bits alone.

Reproduces §4.5's argument end to end: malware hides key-API calls
behind reflection and intent delegation, API-only features miss those
apps, and the auxiliary permission/intent features win them back.

Run:  python examples/feature_engineering.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AndroidSdk,
    ApiChecker,
    AppCorpus,
    CorpusGenerator,
    FeatureMode,
    SdkSpec,
)
from repro.ml.metrics import evaluate


def main() -> None:
    sdk = AndroidSdk.generate(SdkSpec(n_apis=2500, seed=41))
    generator = CorpusGenerator(sdk, seed=42)
    train = generator.generate(1500)
    test = generator.generate(600)

    # Run the expensive study emulation once and share it across modes.
    print("running the all-API study emulation once...")
    probe = ApiChecker(sdk, seed=43)
    study_obs = probe.study_engine().observations(train)

    print("\n== Fig. 10 ablation ==")
    reports = {}
    checkers = {}
    for mode in FeatureMode:
        checker = ApiChecker(sdk, feature_mode=mode, seed=43)
        checker.fit(train, study_observations=list(study_obs))
        verdicts = checker.vet_batch(test)
        pred = np.array([v.malicious for v in verdicts])
        reports[mode] = evaluate(test.labels, pred)
        checkers[mode] = checker
        rep = reports[mode]
        print(
            f"  {mode.value:6s} precision={rep.precision:.3f} "
            f"recall={rep.recall:.3f} F1={rep.f1:.3f}"
        )
    print("  (paper: A 96.8/93.7 -> A+P+I 98.6/96.7)")

    print("\n== Who hides, and who gets caught ==")
    hiders = []
    while len(hiders) < 40:
        apk = generator.sample_app(malicious=True)
        if len(apk.dex.reflection_api_ids) >= 5 or len(
            apk.dex.sent_intents
        ) >= 4:
            hiders.append(apk)
    hider_corpus = AppCorpus(sdk, hiders)
    for mode in (FeatureMode.A, FeatureMode.API):
        verdicts = checkers[mode].vet_batch(hider_corpus)
        caught = sum(v.malicious for v in verdicts)
        print(
            f"  {mode.value:6s} catches {caught}/{len(hiders)} "
            "evasive malware samples"
        )

    print("\n== Why permissions betray reflection ==")
    apk = hiders[0]
    hidden = apk.dex.reflection_api_ids[:5]
    print(f"  sample: {apk.package_name} ({apk.family})")
    for api_id in hidden:
        api = sdk.api(api_id)
        perm = api.permission or "(no permission)"
        print(f"    hides {api.short_name:<40} -> manifest still needs {perm}")


if __name__ == "__main__":
    main()
