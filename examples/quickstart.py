#!/usr/bin/env python3
"""Quickstart: train APICHECKER on a synthetic market and vet new apps.

Walks the full pipeline in ~a minute:

1. generate a synthetic Android SDK and a labelled app corpus,
2. run the study phase (all-API dynamic analysis) and mine the key
   APIs with the paper's four-step strategy,
3. train the random-forest classifier on A+P+I features,
4. vet a batch of fresh submissions and report accuracy and speed.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import AndroidSdk, ApiChecker, CorpusGenerator, SdkSpec


def main() -> None:
    print("== 1. Build the world ==")
    sdk = AndroidSdk.generate(SdkSpec(n_apis=2500, seed=1))
    generator = CorpusGenerator(sdk, seed=2)
    train = generator.generate(1500)
    fresh = generator.generate(500)
    print(
        f"SDK: {len(sdk)} framework APIs | training corpus: {len(train)} "
        f"apps ({train.malicious_count} malicious, "
        f"{train.update_fraction():.0%} updates)"
    )

    print("\n== 2 + 3. Study phase, key-API mining, training ==")
    checker = ApiChecker(sdk, seed=3)
    checker.fit(train)
    selection = checker.selection
    print(
        f"Set-C (mined): {selection.set_c.size} | "
        f"Set-P (restrictive permissions): {selection.set_p.size} | "
        f"Set-S (sensitive operations): {selection.set_s.size} | "
        f"key-API union: {selection.n_keys} (paper: 426)"
    )

    print("\n== 4. Vet fresh submissions ==")
    verdicts = checker.vet_batch(fresh)
    predicted = np.array([v.malicious for v in verdicts])
    from repro.ml.metrics import evaluate

    report = evaluate(fresh.labels, predicted)
    minutes = np.array([v.analysis_minutes for v in verdicts])
    print(
        f"precision={report.precision:.3f} recall={report.recall:.3f} "
        f"F1={report.f1:.3f}   (paper: 0.986 / 0.967)"
    )
    print(
        f"per-app scan time: mean {minutes.mean():.2f} min, "
        f"median {np.median(minutes):.2f} min   (paper: 1.3 min mean)"
    )

    print("\nTop-10 Gini-important features (cf. paper Fig. 13):")
    for name, score in checker.gini_table(10):
        print(f"  {score:.4f}  {name}")


if __name__ == "__main__":
    main()
