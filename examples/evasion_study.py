#!/usr/bin/env python3
"""Anti-evasion study: stock vs hardened emulator vs real device (§4.2).

Malware probes its environment (default IMEI, build properties,
robotic input timing, dead sensors, Xposed artifacts) and goes quiet
when it detects an emulator.  The paper hardens its emulators four
ways and shows API-count parity with real devices rising from 86.6%
to 98.6%.  This example reproduces the controlled experiment and then
ablates each hardening measure individually.

Run:  python examples/evasion_study.py
"""

from __future__ import annotations

import numpy as np

from repro import AndroidSdk, CorpusGenerator, SdkSpec
from repro.emulator.backends import GoogleEmulator, RealDevice
from repro.emulator.device import DeviceEnvironment

SAMPLE = 250


def invoked_counts(sdk, apps, env, backend, seed=7):
    """Per-app rng seeded from the APK hash: environment-independent
    apps then behave identically everywhere, isolating evasion."""
    from repro.emulator.hooks import HookEngine
    from repro.emulator.monkey import MonkeyExerciser
    from repro.emulator.runtime import emulate_app

    hooks = HookEngine(sdk, [])
    counts = []
    for apk in apps:
        rng = np.random.default_rng((seed, int(apk.md5[:12], 16)))
        result = emulate_app(
            apk, sdk, backend, env, hooks,
            monkey=MonkeyExerciser(seed=seed), rng=rng,
            raise_on_crash=False,
        )
        counts.append(len(result.invoked_api_ids))
    return np.array(counts)


def parity(reference, counts):
    tolerance = np.maximum(3, 0.02 * reference)
    return float(np.mean(np.abs(counts - reference) <= tolerance))


def main() -> None:
    sdk = AndroidSdk.generate(SdkSpec(n_apis=2000, seed=31))
    generator = CorpusGenerator(sdk, seed=32)
    corpus = generator.generate(SAMPLE, malware_rate=0.25)
    apps = list(corpus)
    print(
        f"sample: {len(apps)} apps, {corpus.malicious_count} malicious "
        "(enriched so suppression is visible)"
    )

    real = invoked_counts(
        sdk, apps, DeviceEnvironment.real_device(), RealDevice()
    )
    stock = invoked_counts(
        sdk, apps, DeviceEnvironment.stock_emulator(), GoogleEmulator()
    )
    hardened = invoked_counts(
        sdk, apps, DeviceEnvironment.hardened_emulator(), GoogleEmulator()
    )
    print(
        f"\nAPI-count parity with real devices:\n"
        f"  stock emulator    : {parity(real, stock):.1%}  (paper 86.6%)\n"
        f"  hardened emulator : {parity(real, hardened):.1%}  (paper 98.6%)"
    )

    print("\nAblation: hardened emulator minus one measure at a time")
    measures = (
        ("identifiers_masked", "randomized IMEI/IMSI"),
        ("build_props_masked", "realistic build properties"),
        ("network_props_masked", "plausible network state"),
        ("input_humanized", "humanized Monkey timing"),
        ("sensors_replayed", "replayed sensor traces"),
        ("xposed_obfuscated", "obfuscated hook artifacts"),
    )
    for flag, label in measures:
        env = DeviceEnvironment.hardened_emulator().with_flag(**{flag: False})
        counts = invoked_counts(sdk, apps, env, GoogleEmulator())
        print(f"  without {label:<28}: parity {parity(real, counts):.1%}")

    limited = [a for a in apps if a.dex.needs_live_sensors]
    print(
        f"\napps needing live special sensors (never fully emulable): "
        f"{len(limited)}/{len(apps)} (paper: 1.4%)"
    )


if __name__ == "__main__":
    main()
