#!/usr/bin/env python3
"""Rule-mining smoke: push a mined ruleset through a live 2-shard router.

The CI rules-mining job runs this after ``repro rules mine`` and
``repro rules lint``:

1. load the mined artifact (``sys.argv[1]``) and verify it is a
   well-formed generated ruleset with mined coverage for the stock
   ``lowkey_spy`` blind spot,
2. rebuild the exact world the CLI mined against (``--apis 800
   --train 250``, default seed 7) so every rule's API names resolve,
   train the bootstrap model and publish it to a model registry,
3. boot a 2-shard router, submit traffic through the ``/v1`` front
   door under the builtin ruleset (v0),
4. POST the mined artifact to ``/v1/admin/ruleset`` mid-traffic and
   let the router roll it across both shards,
5. submit more traffic and poll everything to a terminal outcome:
   nothing lost, every shard's healthz reports the pushed version,
   every explanation is version-consistent (``mined_*`` hits only
   under the pushed version), and mined rules fire live.

The lowkey_spy closure itself is checked off-line in step 2 with the
rebuilt world's evaluator: the service only explains apps the model
flags, and lowkey_spy is exactly the family the model can miss — the
bench gate (``benchmarks/bench_rules_mining.py``) holds the recall
floor; the smoke proves the artifact's rules resolve and fire.

Exit code 0 means the operator loop (mine -> lint -> push -> roll)
works end to end; any assertion or timeout is a build failure.

Run:  python examples/rules_mining_smoke.py /tmp/mined_rules.json
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro import (
    AndroidSdk,
    ApiChecker,
    CorpusGenerator,
    ModelRegistry,
    RuleEvaluator,
    SdkSpec,
    ShardRouter,
    builtin_ruleset,
    load_generated_ruleset,
    make_router_server,
)
from repro.serve.codec import apk_to_dict

#: Mirrors the CLI's ``rules mine`` world (--apis 800 --train 250,
#: default --seed 7): _build_and_fit uses seed, seed+1, seed+2.
N_APIS = 800
N_TRAIN = 250
SEED = 7

N_PRE_PUSH = 6
N_POST_PUSH = 10
N_SPY = 20
POLL_TIMEOUT = 120.0


def _get(url: str):
    with urllib.request.urlopen(url, timeout=15.0) as resp:
        return resp.status, resp.read()


def _post_json(url: str, payload: dict):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=15.0) as resp:
        return resp.status, json.loads(resp.read())


def _post_bytes(url: str, body: bytes):
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=30.0) as resp:
        return resp.status, json.loads(resp.read())


def _metric(text: str, name: str) -> float:
    """Sum a counter/gauge across label sets in Prometheus exposition."""
    total = 0.0
    seen = False
    for line in text.splitlines():
        if line.startswith(name) and not line.startswith("#"):
            head = line.split(" ")[0]
            if head == name or head.startswith(name + "{"):
                total += float(line.rsplit(" ", 1)[1])
                seen = True
    assert seen, f"metric {name} missing from /v1/metrics"
    return total


def _poll_all(base: str, md5s, deadline_s: float = POLL_TIMEOUT):
    deadline = time.monotonic() + deadline_s
    outcomes: dict[str, dict] = {}
    while len(outcomes) < len(md5s):
        assert time.monotonic() < deadline, "timed out waiting for results"
        for md5 in md5s:
            if md5 in outcomes:
                continue
            try:
                status, body = _get(f"{base}/v1/result/{md5}")
            except urllib.error.HTTPError as err:  # 404 must not happen
                raise AssertionError(
                    f"result/{md5} -> HTTP {err.code}"
                ) from err
            if status == 200:
                outcomes[md5] = json.loads(body)
        time.sleep(0.05)
    return outcomes


def main() -> int:
    if len(sys.argv) != 2:
        print(
            "usage: rules_mining_smoke.py <mined_rules.json>",
            file=sys.stderr,
        )
        return 2
    artifact_path = Path(sys.argv[1])
    artifact = artifact_path.read_bytes()

    print("== 1. Validate the mined artifact ==")
    mined = load_generated_ruleset(artifact)
    mined_specs = mined.specs
    mined_only = [
        s for s in mined_specs if s.behavior.startswith("mined_")
    ]
    assert mined_only, "artifact carries no mined rules"
    spy_rules = [s for s in mined_only if "lowkey_spy" in s.families]
    assert spy_rules, "mined artifact does not cover lowkey_spy"
    print(
        f"{artifact_path}: {len(mined_specs)} rules "
        f"({len(mined_only)} mined, {len(spy_rules)} for lowkey_spy)"
    )

    print("\n== 2. Rebuild the mining world and bootstrap a model ==")
    sdk = AndroidSdk.generate(SdkSpec(n_apis=N_APIS, seed=SEED))
    generator = CorpusGenerator(sdk, seed=SEED + 1)
    checker = ApiChecker(sdk, seed=SEED + 2).fit(
        generator.generate(N_TRAIN)
    )
    workdir = Path(tempfile.mkdtemp(prefix="rules-mining-smoke-"))
    models = ModelRegistry(workdir / "models")
    model_version = models.publish(
        checker, metadata={"source": "mining-smoke"}, activate=True
    ).version
    print(f"published and activated model v{model_version}")

    # Off-line blind-spot check: the artifact's rules must resolve in
    # this SDK and fire on fresh lowkey_spy apps where the stock
    # bundle stays silent.
    spy_gen = CorpusGenerator(sdk, seed=SEED + 50)
    spy_obs = checker.production_engine.observations(
        [spy_gen.sample_app(archetype="lowkey_spy") for _ in range(N_SPY)]
    )

    def _spy_recall(specs) -> float:
        evaluator = RuleEvaluator.from_specs(
            specs, sdk, tracked_api_ids=checker.key_api_ids
        )
        fam_of = {s.behavior: s.families for s in specs}
        fired = sum(
            1
            for report in evaluator.evaluate(spy_obs)
            if any(
                "lowkey_spy" in fam_of[h.behavior] for h in report.hits
            )
        )
        return fired / len(spy_obs)

    stock_recall = _spy_recall(builtin_ruleset())
    mined_recall = _spy_recall(mined_specs)
    assert stock_recall == 0.0, (
        f"stock bundle unexpectedly covers lowkey_spy ({stock_recall})"
    )
    assert mined_recall >= 0.5, (
        f"mined lowkey_spy recall {mined_recall:.2f} below 0.5"
    )
    print(
        f"lowkey_spy on {N_SPY} fresh apps: stock {stock_recall:.2f} "
        f"-> mined {mined_recall:.2f} (blind spot closed)"
    )

    print("\n== 3. Boot a 2-shard router, traffic under builtin v0 ==")
    router = ShardRouter(
        workdir / "models",
        workdir / "spool",
        n_shards=2,
        workers=1,
        batch_size=4,
    ).start()
    front = make_router_server(router).start_background()
    base = f"http://127.0.0.1:{front.port}"
    status, body = _get(f"{base}/v1/healthz")
    health = json.loads(body)
    assert status == 200 and health["status"] == "ok"
    assert [s["ruleset_version"] for s in health["shards"]] == [0, 0]
    print(f"routing on {base}, both shards on builtin ruleset v0")

    pre = []
    for i in range(N_PRE_PUSH):
        apk = generator.sample_app(malicious=(i % 2 == 0))
        status, ticket = _post_json(
            f"{base}/v1/submit", {"apk": apk_to_dict(apk)}
        )
        assert status == 202, f"submit returned {status}"
        pre.append(ticket["md5"])

    print("\n== 4. Push the mined ruleset mid-traffic ==")
    status, receipt = _post_bytes(f"{base}/v1/admin/ruleset", artifact)
    assert status == 200, f"admin push returned {status}"
    pushed = receipt["ruleset_version"]
    assert pushed >= 1 and receipt["n_rules"] == len(mined_specs)
    assert set(receipt["shards"]) == {"0", "1"}
    print(
        f"rolled ruleset v{pushed} ({receipt['n_rules']} rules) "
        f"across shards {sorted(receipt['shards'])}"
    )

    print("\n== 5. Post-push traffic, poll everything terminal ==")
    post = []
    for i in range(N_POST_PUSH):
        apk = generator.sample_app(malicious=(i % 2 == 0))
        status, ticket = _post_json(
            f"{base}/v1/submit", {"apk": apk_to_dict(apk)}
        )
        assert status == 202, f"submit returned {status}"
        post.append(ticket["md5"])

    everything = pre + post
    outcomes = _poll_all(base, everything)
    assert all(o["status"] == "done" for o in outcomes.values())
    print(f"all {len(outcomes)} terminal through the roll (zero lost)")

    status, body = _get(f"{base}/v1/healthz")
    health = json.loads(body)
    assert [s["ruleset_version"] for s in health["shards"]] == [
        pushed,
        pushed,
    ], health["shards"]

    # Version consistency per explanation: mined_* behaviors may only
    # appear in reports explained under the pushed version, and at
    # least one mined rule must fire live post-roll.
    mined_fired = False
    for md5 in everything:
        status, body = _get(f"{base}/v1/explain/{md5}")
        assert status == 200
        explained = json.loads(body)
        version = explained["ruleset_version"]
        assert version in (0, pushed), explained
        if not explained["explanation"]:
            continue
        for hit in explained["explanation"]["hits"]:
            if hit["behavior"].startswith("mined_"):
                assert version == pushed, (
                    f"mined hit under ruleset v{version}: {hit}"
                )
                mined_fired = True
    assert mined_fired, "no mined rule fired on post-roll traffic"
    print("explanations version-consistent; mined rules fire live")

    status, body = _get(f"{base}/v1/metrics")
    text = body.decode("utf-8")
    assert _metric(text, "serve_router_ruleset_pushes_total") == 1
    assert _metric(text, "ruleset_swap_total") == 2  # one per shard
    print("scrape: 1 router push, 2 per-shard swaps")

    front.stop()
    abandoned = router.stop()
    assert all(not md5s for md5s in abandoned.values()), abandoned
    print("\nrules mining smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
