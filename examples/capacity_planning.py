#!/usr/bin/env python3
"""Capacity planning: how many servers does a market of size X need?

Fits the per-app analysis-time distribution from actual APICHECKER
vetting runs, then sizes deployments for several daily volumes —
including the paper's operating point (one 16-slot server for ~10K
apps/day) — with queueing-delay estimates and monthly-report
confidence intervals.

Run:  python examples/capacity_planning.py
"""

from __future__ import annotations

import numpy as np

from repro import AndroidSdk, ApiChecker, CorpusGenerator, SdkSpec
from repro.core.capacity import AnalysisLoadModel, CapacityPlanner
from repro.ml.bootstrap import bootstrap_metrics


def main() -> None:
    print("== Measure the per-app analysis-time distribution ==")
    sdk = AndroidSdk.generate(SdkSpec(n_apis=2000, seed=51))
    generator = CorpusGenerator(sdk, seed=52)
    train = generator.generate(1200)
    checker = ApiChecker(sdk, seed=53).fit(train)
    sample = generator.generate(300)
    verdicts = checker.vet_batch(sample)
    minutes = np.array([v.analysis_minutes for v in verdicts])
    load = AnalysisLoadModel.from_samples(minutes)
    print(
        f"measured: mean {load.mean_minutes:.2f} min/app, CV^2 "
        f"{load.cv2:.2f} over {len(minutes)} scans "
        "(paper: 1.92 min end-to-end)"
    )

    print("\n== Provisioning table ==")
    planner = CapacityPlanner(load, max_utilization=0.9)
    header = (
        f"{'apps/day':>10} {'servers':>8} {'slots':>6} {'util':>6} "
        f"{'wait(min)':>10} {'headroom/day':>13}"
    )
    print(header)
    print("-" * len(header))
    for volume in (2_000, 10_000, 30_000, 100_000, 500_000):
        plan = planner.plan(volume)
        print(
            f"{volume:>10,} {plan.servers:>8} {plan.slots:>6} "
            f"{plan.utilization:>6.0%} {plan.mean_wait_minutes:>10.2f} "
            f"{plan.headroom_apps_per_day:>13,.0f}"
        )
    print(
        "\npaper's deployment: 10K/day on a single 16-slot server -> "
        f"this model needs {planner.servers_needed(10_000)} server(s)"
    )

    print("\n== Monthly report with confidence intervals ==")
    predicted = np.array([v.malicious for v in verdicts])
    report = bootstrap_metrics(sample.labels, predicted, seed=54)
    print(f"precision {report.precision}")
    print(f"recall    {report.recall}")
    print(f"F1        {report.f1}")
    print(
        "(the paper's Fig. 12 bands, 98.5-99.0 / 96.5-97.0, are "
        "month-to-month point estimates; intervals like these tell an "
        "operator whether a dip is drift or noise)"
    )


if __name__ == "__main__":
    main()
