#!/usr/bin/env python3
"""Model evolution: a year of monthly retraining (§5.3).

Streams twelve months of submissions through APICHECKER.  Each month
is vetted *prospectively* with the model trained on prior months, then
absorbed into the training pool; the key-API selection is re-run and
the classifier refit.  Along the way the Android SDK gains new APIs,
some of which malware adopts — the experiment behind Figs. 12 and 14.

Run:  python examples/model_evolution.py
"""

from __future__ import annotations

from repro import AndroidSdk, EvolutionLoop, MarketStream, SdkSpec

MONTHS = 12


def main() -> None:
    sdk = AndroidSdk.generate(SdkSpec(n_apis=2000, seed=21))
    stream = MarketStream(
        sdk,
        apps_per_month=300,
        seed=22,
        sdk_update_every=4,   # a new SDK level every four months
        sdk_growth=60,
    )
    print("bootstrapping the pre-deployment corpus...")
    initial = stream.bootstrap_corpus(1000)
    loop = EvolutionLoop(stream, initial, max_pool=2600, checker_seed=23)
    print(
        f"initial model: {loop.checker.key_api_ids.size} key APIs over "
        f"{len(sdk)} SDK APIs\n"
    )

    header = f"{'month':>5} {'prec':>6} {'recall':>7} {'F1':>6} " \
             f"{'#keys':>6} {'SDK':>6} {'pool':>6}"
    print(header)
    print("-" * len(header))
    for _ in range(MONTHS):
        rec = loop.run_month()
        rep = rec.report
        print(
            f"{rec.month:>5} {rep.precision:>6.3f} {rep.recall:>7.3f} "
            f"{rep.f1:>6.3f} {rec.n_key_apis:>6} {rec.sdk_size:>6} "
            f"{rec.pool_size:>6}"
        )

    sizes = [r.n_key_apis for r in loop.history]
    precisions = [r.report.precision for r in loop.history]
    recalls = [r.report.recall for r in loop.history]
    print(
        f"\nkey-API count drift: {min(sizes)}..{max(sizes)} "
        "(paper: 425..432)"
    )
    print(
        f"online precision {min(precisions):.3f}..{max(precisions):.3f} "
        "(paper: 0.985..0.990), "
        f"recall {min(recalls):.3f}..{max(recalls):.3f} "
        "(paper: 0.965..0.970)"
    )


if __name__ == "__main__":
    main()
