#!/usr/bin/env python3
"""A day at T-Market: vet a day's submissions on one analysis server.

Reproduces the production loop of §5.2: APICHECKER runs on a single
commodity server (16 emulator slots) and vets the day's submissions,
the flagged apps go through the false-positive triage workflow
(updates fast-vetted against their previous version), and published
malware that slips through is handled passively on user reports.

Run:  python examples/market_vetting_day.py
"""

from __future__ import annotations

import numpy as np

from repro import AndroidSdk, ApiChecker, CorpusGenerator, SdkSpec
from repro.core.vetting import VettingService
from repro.corpus.market import ReviewPipeline, TMarket
from repro.emulator.cluster import ServerCluster

#: Scaled-down market day (the real T-Market sees ~10K/day).
APPS_PER_DAY = 600


def main() -> None:
    sdk = AndroidSdk.generate(SdkSpec(n_apis=2500, seed=11))
    generator = CorpusGenerator(sdk, seed=12)

    print("== Train APICHECKER on the historical corpus ==")
    history = generator.generate(1500)
    review = ReviewPipeline(seed=13)
    labels = review.label_corpus(history)  # the market's own labels
    checker = ApiChecker(sdk, seed=14).fit(history, labels=labels)
    print(f"key APIs: {checker.key_api_ids.size}")

    print("\n== Simulate one market day ==")
    market = TMarket(generator, review=review, apps_per_day=APPS_PER_DAY)
    day = market.next_day_submissions()
    true_labels = market.ingest(day)

    service = VettingService(checker, cluster=ServerCluster(n_servers=1))
    report = service.process_day(day, true_labels=true_labels)

    print(f"submissions: {report.n_apps}")
    print(
        f"flagged malicious: {report.n_flagged} "
        f"({report.flagged_fraction:.1%})"
    )
    print(
        f"per-app analysis: mean {report.mean_minutes:.2f} min, "
        f"median {report.median_minutes:.2f}, max {report.max_minutes:.2f} "
        "(paper: 1.3 min mean)"
    )
    print(
        f"cluster makespan: {report.schedule.makespan_minutes:.0f} min at "
        f"{report.schedule.utilization:.0%} slot utilization -> "
        f"{report.throughput_per_day:,.0f} apps/day capacity "
        "(paper: ~10K/day on one server)"
    )

    fp = report.fp_report
    print("\n== FP triage (active, daily) ==")
    print(
        f"flagged {fp.n_flagged}: {fp.n_confirmed_malicious} confirmed, "
        f"{fp.n_false_positives} false positives"
    )
    print(
        f"fast-vetted as updates: {fp.n_fast_vetted} "
        f"({fp.fast_vetted_fraction:.0%}; paper ~90%) — "
        f"{fp.manual_minutes:.0f} manual minutes total"
    )

    print("\n== FN triage (passive, on user reports) ==")
    published = [
        apk
        for apk, flagged in zip(day, (v.malicious for v in report.verdicts))
        if not flagged
    ]
    published_labels = np.array([a.is_malicious for a in published])
    fn = service.triage.triage_user_reports(published, published_labels)
    print(
        f"user reports: {fn.n_reports}, confirmed malicious: "
        f"{fn.n_confirmed_malicious}"
    )
    if fn.n_confirmed_malicious:
        print(
            f"of which barely using key APIs: "
            f"{fn.barely_uses_keys_fraction:.0%} (paper: 87%)"
        )


if __name__ == "__main__":
    main()
