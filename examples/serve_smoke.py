#!/usr/bin/env python3
"""Serve smoke: boot the online vetting service and exercise the API.

The CI serve-smoke job runs this end to end:

1. train a small bootstrap model and publish it to a model registry,
2. start the durable online service + HTTP API on an ephemeral port,
3. submit a batch over real HTTP (mixed lanes), poll every result to a
   terminal outcome,
4. scrape ``/metrics`` and assert the conservation counters: accepted ==
   completed == scored, queue drained, admission rejects surfaced.

Exit code 0 means the serving path works; any assertion or timeout is a
build failure.

Run:  python examples/serve_smoke.py
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro import (
    AndroidSdk,
    ApiChecker,
    CorpusGenerator,
    ModelRegistry,
    OnlineVettingService,
    SdkSpec,
    make_server,
)
from repro.serve.codec import apk_to_dict

N_SUBMISSIONS = 16
POLL_TIMEOUT = 120.0


def _get(url: str):
    with urllib.request.urlopen(url, timeout=15.0) as resp:
        return resp.status, resp.read()


def _post_json(url: str, payload: dict):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=15.0) as resp:
        return resp.status, json.loads(resp.read())


def _metric(text: str, name: str) -> float:
    """Sum a counter/gauge across label sets in Prometheus exposition."""
    total = 0.0
    seen = False
    for line in text.splitlines():
        if line.startswith(name) and not line.startswith("#"):
            head = line.split(" ")[0]
            if head == name or head.startswith(name + "{"):
                total += float(line.rsplit(" ", 1)[1])
                seen = True
    assert seen, f"metric {name} missing from /metrics"
    return total


def main() -> int:
    print("== 1. Bootstrap model ==")
    sdk = AndroidSdk.generate(SdkSpec(n_apis=1000, seed=11))
    generator = CorpusGenerator(sdk, seed=12)
    checker = ApiChecker(sdk, seed=13).fit(generator.generate(300))

    workdir = Path(tempfile.mkdtemp(prefix="serve-smoke-"))
    models = ModelRegistry(workdir / "models")
    version = models.publish(
        checker, metadata={"source": "smoke"}, activate=True
    ).version
    print(f"published and activated model v{version}")

    print("\n== 2. Start the service + HTTP API ==")
    service = OnlineVettingService(
        models, spool_dir=workdir / "spool", workers=2, batch_size=4
    ).start()
    server = make_server(service).start_background()
    base = f"http://127.0.0.1:{server.port}"
    status, body = _get(f"{base}/healthz")
    assert status == 200, f"healthz returned {status}"
    print(f"serving on {base}: {json.loads(body)}")

    print(f"\n== 3. Submit {N_SUBMISSIONS} apps over HTTP and poll ==")
    lanes = ["bulk", "bulk", "resubmit", "escalated"]
    submitted = []
    for i in range(N_SUBMISSIONS):
        apk = generator.sample_app(malicious=(i % 5 == 0))
        status, ticket = _post_json(
            f"{base}/submit",
            {"apk": apk_to_dict(apk), "lane": lanes[i % len(lanes)]},
        )
        assert status == 202, f"submit returned {status}"
        submitted.append(ticket["md5"])
    deadline = time.monotonic() + POLL_TIMEOUT
    outcomes = {}
    while len(outcomes) < len(submitted):
        assert time.monotonic() < deadline, "timed out waiting for results"
        for md5 in submitted:
            if md5 in outcomes:
                continue
            try:
                status, body = _get(f"{base}/result/{md5}")
            except urllib.error.HTTPError as err:  # 404 must not happen
                raise AssertionError(
                    f"result/{md5} -> HTTP {err.code}"
                ) from err
            if status == 200:
                outcomes[md5] = json.loads(body)
        time.sleep(0.05)
    flagged = sum(bool(o.get("malicious")) for o in outcomes.values())
    assert all(o["status"] == "done" for o in outcomes.values())
    print(f"all {len(outcomes)} terminal ({flagged} flagged)")

    print("\n== 4. Scrape /metrics and check conservation ==")
    status, body = _get(f"{base}/metrics")
    assert status == 200
    text = body.decode("utf-8")
    accepted = _metric(text, "serve_submissions_total")
    completed = _metric(text, "serve_completed_total")
    scored = _metric(text, "serve_scored_total")
    depth = _metric(text, "serve_queue_depth")
    active = _metric(text, "serve_active_model_version")
    unique = len(set(submitted))
    assert accepted == unique, f"accepted {accepted} != {unique}"
    assert completed == unique, f"completed {completed} != {unique}"
    assert scored == unique, f"scored {scored} != {unique}"
    assert depth == 0, f"queue not drained: depth {depth}"
    assert active == version
    print(
        f"accepted={accepted:.0f} completed={completed:.0f} "
        f"scored={scored:.0f} depth={depth:.0f} "
        f"active_model=v{active:.0f}"
    )

    server.stop()
    service.close()
    print("\nserve smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
