#!/usr/bin/env python3
"""Serve smoke: boot the vetting tier and exercise the /v1 API.

The CI serve-smoke job runs this end to end:

1. train a small bootstrap model and publish it to a model registry,
2. start the durable online service + HTTP API on an ephemeral port,
3. submit a batch over real HTTP (mixed lanes), poll every result to a
   terminal outcome,
4. scrape ``/v1/metrics`` and assert the conservation counters:
   accepted == completed == scored, queue drained,
5. boot a 2-shard router over the same model registry, submit through
   the ``/v1`` front door, SIGKILL one shard, assert the 503
   ``shard_unavailable`` envelope and degraded healthz, restart the
   shard over its WAL segment, and re-check conservation across the
   shard-labelled aggregated scrape.

Exit code 0 means the serving path works; any assertion or timeout is a
build failure.

Run:  python examples/serve_smoke.py
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro import (
    AndroidSdk,
    ApiChecker,
    CorpusGenerator,
    ModelRegistry,
    OnlineVettingService,
    SdkSpec,
    ShardRouter,
    make_router_server,
    make_server,
    shard_of,
)
from repro.serve.codec import apk_to_dict

N_SUBMISSIONS = 16
N_SHARD_SUBMISSIONS = 12
POLL_TIMEOUT = 120.0


def _get(url: str):
    with urllib.request.urlopen(url, timeout=15.0) as resp:
        return resp.status, resp.read()


def _post_json(url: str, payload: dict):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=15.0) as resp:
        return resp.status, json.loads(resp.read())


def _metric(text: str, name: str) -> float:
    """Sum a counter/gauge across label sets in Prometheus exposition."""
    total = 0.0
    seen = False
    for line in text.splitlines():
        if line.startswith(name) and not line.startswith("#"):
            head = line.split(" ")[0]
            if head == name or head.startswith(name + "{"):
                total += float(line.rsplit(" ", 1)[1])
                seen = True
    assert seen, f"metric {name} missing from /v1/metrics"
    return total


def _poll_all(base: str, md5s, deadline_s: float = POLL_TIMEOUT):
    deadline = time.monotonic() + deadline_s
    outcomes: dict[str, dict] = {}
    while len(outcomes) < len(md5s):
        assert time.monotonic() < deadline, "timed out waiting for results"
        for md5 in md5s:
            if md5 in outcomes:
                continue
            try:
                status, body = _get(f"{base}/v1/result/{md5}")
            except urllib.error.HTTPError as err:  # 404 must not happen
                raise AssertionError(
                    f"result/{md5} -> HTTP {err.code}"
                ) from err
            if status == 200:
                outcomes[md5] = json.loads(body)
        time.sleep(0.05)
    return outcomes


def main() -> int:
    print("== 1. Bootstrap model ==")
    sdk = AndroidSdk.generate(SdkSpec(n_apis=1000, seed=11))
    generator = CorpusGenerator(sdk, seed=12)
    checker = ApiChecker(sdk, seed=13).fit(generator.generate(300))

    workdir = Path(tempfile.mkdtemp(prefix="serve-smoke-"))
    models = ModelRegistry(workdir / "models")
    version = models.publish(
        checker, metadata={"source": "smoke"}, activate=True
    ).version
    print(f"published and activated model v{version}")

    print("\n== 2. Start the service + HTTP API ==")
    service = OnlineVettingService(
        models, spool_dir=workdir / "spool", workers=2, batch_size=4
    ).start()
    server = make_server(service).start_background()
    base = f"http://127.0.0.1:{server.port}"
    status, body = _get(f"{base}/v1/healthz")
    assert status == 200, f"healthz returned {status}"
    print(f"serving on {base}: {json.loads(body)}")

    print(f"\n== 3. Submit {N_SUBMISSIONS} apps over HTTP and poll ==")
    lanes = ["bulk", "bulk", "resubmit", "escalated"]
    submitted = []
    for i in range(N_SUBMISSIONS):
        apk = generator.sample_app(malicious=(i % 5 == 0))
        status, ticket = _post_json(
            f"{base}/v1/submit",
            {"apk": apk_to_dict(apk), "lane": lanes[i % len(lanes)]},
        )
        assert status == 202, f"submit returned {status}"
        submitted.append(ticket["md5"])
    outcomes = _poll_all(base, submitted)
    flagged = sum(bool(o.get("malicious")) for o in outcomes.values())
    assert all(o["status"] == "done" for o in outcomes.values())
    print(f"all {len(outcomes)} terminal ({flagged} flagged)")

    print("\n== 4. Scrape /v1/metrics and check conservation ==")
    status, body = _get(f"{base}/v1/metrics")
    assert status == 200
    text = body.decode("utf-8")
    accepted = _metric(text, "serve_submissions_total")
    completed = _metric(text, "serve_completed_total")
    scored = _metric(text, "serve_scored_total")
    depth = _metric(text, "serve_queue_depth")
    active = _metric(text, "serve_active_model_version")
    unique = len(set(submitted))
    assert accepted == unique, f"accepted {accepted} != {unique}"
    assert completed == unique, f"completed {completed} != {unique}"
    assert scored == unique, f"scored {scored} != {unique}"
    assert depth == 0, f"queue not drained: depth {depth}"
    assert active == version

    # Legacy unprefixed paths are gone: their 301 grace window passed.
    try:
        status, body = _get(f"{base}/healthz")
    except urllib.error.HTTPError as exc:
        status = exc.code
    assert status == 404, f"unprefixed /healthz must 404, got {status}"
    print(
        f"accepted={accepted:.0f} completed={completed:.0f} "
        f"scored={scored:.0f} depth={depth:.0f} "
        f"active_model=v{active:.0f}"
    )

    server.stop()
    service.close()

    print("\n== 5. Sharded tier: 2 shards, kill one, replay its WAL ==")
    router = ShardRouter(
        workdir / "models",
        workdir / "shard-spool",
        n_shards=2,
        workers=1,
        batch_size=4,
    ).start()
    front = make_router_server(router).start_background()
    rbase = f"http://127.0.0.1:{front.port}"
    status, body = _get(f"{rbase}/v1/healthz")
    health = json.loads(body)
    assert status == 200 and health["status"] == "ok"
    assert len(health["shards"]) == 2
    print(f"routing on {rbase} -> ports "
          f"{[s['port'] for s in health['shards']]}")

    shard_md5s = []
    for i in range(N_SHARD_SUBMISSIONS):
        apk = generator.sample_app(malicious=(i % 5 == 0))
        status, ticket = _post_json(
            f"{rbase}/v1/submit", {"apk": apk_to_dict(apk)}
        )
        assert status == 202, f"router submit returned {status}"
        shard_md5s.append(ticket["md5"])
    outcomes = _poll_all(rbase, shard_md5s)
    assert all(o["status"] == "done" for o in outcomes.values())
    print(f"all {len(outcomes)} terminal through the front door")

    # Conservation across the aggregated, shard-labelled scrape (while
    # both original worker processes are still alive).
    status, body = _get(f"{rbase}/v1/metrics")
    assert status == 200
    text = body.decode("utf-8")
    assert 'shard="0"' in text and 'shard="1"' in text
    accepted = _metric(text, "serve_submissions_total")
    scored = _metric(text, "serve_scored_total")
    unique = len(set(shard_md5s))
    assert accepted == unique, f"shard accepted {accepted} != {unique}"
    assert scored == unique, f"shard scored {scored} != {unique}"
    print(f"aggregated scrape: accepted={accepted:.0f} "
          f"scored={scored:.0f} (counters shard-labelled)")

    victim = shard_of(shard_md5s[0], 2)
    router.kill_shard(victim)
    try:
        _get(f"{rbase}/v1/result/{shard_md5s[0]}")
        raise AssertionError("dead shard did not 503")
    except urllib.error.HTTPError as err:
        assert err.code == 503, f"expected 503, got {err.code}"
        envelope = json.load(err)["error"]
        assert envelope["code"] == "shard_unavailable", envelope
    try:
        _get(f"{rbase}/v1/healthz")
        raise AssertionError("healthz did not degrade")
    except urllib.error.HTTPError as err:
        assert err.code == 503
        assert json.load(err)["status"] == "degraded"
    print(f"killed shard {victim}: 503 envelope + degraded healthz")

    replayed = router.restart_shard(victim)
    status, body = _get(f"{rbase}/v1/result/{shard_md5s[0]}")
    assert status == 200 and json.loads(body)["status"] == "done"
    print(f"restarted shard {victim} over its WAL "
          f"(replayed {replayed} uncompleted)")

    # Every outcome is still served, and nothing was re-scored: the
    # restarted worker's counters reset with its process, so its scored
    # total only counts post-restart work — any duplicate scoring of
    # the recovered outcomes would push the cross-shard sum past the
    # accepted total.
    outcomes = _poll_all(rbase, shard_md5s)
    assert all(o["status"] == "done" for o in outcomes.values())
    status, body = _get(f"{rbase}/v1/metrics")
    text = body.decode("utf-8")
    scored = _metric(text, "serve_scored_total")
    assert scored <= unique, f"duplicate scoring: {scored} > {unique}"
    print(f"post-restart scrape: scored={scored:.0f} <= {unique} "
          "(no duplicate terminal outcomes)")

    front.stop()
    abandoned = router.stop()
    assert all(not md5s for md5s in abandoned.values()), abandoned
    print("\nserve smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
